package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hare/internal/stats"
)

// quickInstance wraps an Instance with a testing/quick generator so
// properties can be checked over the full input distribution.
type quickInstance struct{ in *Instance }

// Generate implements quick.Generator.
func (quickInstance) Generate(r *rand.Rand, size int) reflect.Value {
	rng := stats.New(r.Int63())
	nm := 1 + rng.Intn(4)
	nj := 1 + rng.Intn(4)
	in := &Instance{NumGPUs: nm}
	for j := 0; j < nj; j++ {
		in.Jobs = append(in.Jobs, &Job{
			ID: JobID(j), Name: "q", Weight: rng.Uniform(0.5, 4),
			Arrival: rng.Uniform(0, 8),
			Rounds:  1 + rng.Intn(3), Scale: 1 + rng.Intn(2),
		})
		tr := make([]float64, nm)
		sy := make([]float64, nm)
		for m := 0; m < nm; m++ {
			tr[m] = rng.Uniform(0.5, 6)
			sy[m] = rng.Uniform(0, 1.5)
		}
		in.Train = append(in.Train, tr)
		in.Sync = append(in.Sync, sy)
	}
	return reflect.ValueOf(quickInstance{in: in})
}

// TestQuickGeneratedInstancesValid: the generator only produces
// structurally valid instances.
func TestQuickGeneratedInstancesValid(t *testing.T) {
	f := func(q quickInstance) bool {
		return q.in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickDispatchAlwaysFeasible: greedy dispatch over any generated
// instance satisfies constraints (4)–(8).
func TestQuickDispatchAlwaysFeasible(t *testing.T) {
	f := func(q quickInstance, seed int64) bool {
		s := greedyDispatch(q.in, stats.New(seed))
		return ValidateSchedule(q.in, s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickObjectiveLowerBounds: for any feasible schedule, every
// job's completion is at least arrival + its critical path (rounds ×
// fastest train+sync), and the weighted objective respects the
// aggregate bound.
func TestQuickObjectiveLowerBounds(t *testing.T) {
	f := func(q quickInstance, seed int64) bool {
		in := q.in
		s := greedyDispatch(in, stats.New(seed))
		comps := s.JobCompletions(in)
		for _, j := range in.Jobs {
			fastest := math.Inf(1)
			for m := 0; m < in.NumGPUs; m++ {
				fastest = math.Min(fastest, in.Train[j.ID][m]+in.Sync[j.ID][m])
			}
			if comps[j.ID] < j.Arrival+fastest*float64(j.Rounds)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickSerializationRoundTrips: any schedule survives the JSON
// round trip bit-for-bit.
func TestQuickSerializationRoundTrips(t *testing.T) {
	f := func(q quickInstance, seed int64) bool {
		s := greedyDispatch(q.in, stats.New(seed))
		data, err := s.MarshalJSON()
		if err != nil {
			return false
		}
		back := NewSchedule()
		if err := back.UnmarshalJSON(data); err != nil {
			return false
		}
		if len(back.Placements) != len(s.Placements) {
			return false
		}
		//lint:ordered independent per-key equality checks
		for tr, p := range s.Placements {
			if back.Placements[tr] != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickAlphaAtLeastOne: the heterogeneity spread is ≥ 1 for every
// instance (it is a max of ratios each ≥ 1).
func TestQuickAlphaAtLeastOne(t *testing.T) {
	f := func(q quickInstance) bool {
		return q.in.Alpha() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
