package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The on-disk schedule format: the scheduler persists its decision so
// executors (or a later replay) can pick it up — the file analogue of
// the task sequences Hare's scheduler pushes to executors over the
// control plane.

type scheduleFile struct {
	Placements []placementRec `json:"placements"`
}

type placementRec struct {
	Task  TaskRef `json:"task"`
	GPU   int     `json:"gpu"`
	Start float64 `json:"start"`
}

// MarshalJSON serializes the schedule with placements in
// deterministic (job, round, index) order.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	recs := make([]placementRec, 0, len(s.Placements))
	for t, p := range s.Placements {
		recs = append(recs, placementRec{Task: t, GPU: p.GPU, Start: p.Start})
	}
	sort.Slice(recs, func(a, b int) bool { return lessTask(recs[a].Task, recs[b].Task) })
	return json.Marshal(scheduleFile{Placements: recs})
}

// UnmarshalJSON parses a schedule written by MarshalJSON. Duplicate
// task entries are rejected.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var f scheduleFile
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	s.Placements = make(map[TaskRef]Placement, len(f.Placements))
	for _, r := range f.Placements {
		if _, dup := s.Placements[r.Task]; dup {
			return fmt.Errorf("core: duplicate placement for task %v", r.Task)
		}
		s.Placements[r.Task] = Placement{GPU: r.GPU, Start: r.Start}
	}
	return nil
}

// SaveSchedule writes a schedule to path as JSON.
func SaveSchedule(s *Schedule, path string) error {
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return fmt.Errorf("core: marshal schedule: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadSchedule reads a schedule written by SaveSchedule.
func LoadSchedule(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read schedule: %w", err)
	}
	s := NewSchedule()
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("core: parse schedule: %w", err)
	}
	return s, nil
}

// SaveInstance writes an instance to path as JSON, so a planned
// problem can be replayed or inspected later.
func SaveInstance(in *Instance, path string) error {
	data, err := json.MarshalIndent(in, "", " ")
	if err != nil {
		return fmt.Errorf("core: marshal instance: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadInstance reads an instance written by SaveInstance and
// validates it.
func LoadInstance(path string) (*Instance, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read instance: %w", err)
	}
	var in Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: parse instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}
