// Package core defines the domain model shared by every Hare
// subsystem: DML jobs, their training rounds and tasks, scheduling
// instances (per-job, per-GPU task times), and schedules together with
// validation of the paper's feasibility constraints (4)–(8).
//
// The types deliberately mirror the notation of Section 5 of the
// paper: a job n ∈ N consists of |R_n| training rounds; each round
// launches |D_r| parallel tasks; task i has training time T^c_{i,m}
// and synchronization time T^s_{i,m} on GPU m. Task times are uniform
// across a job's tasks and rounds (the paper drops the round subscript
// after observing per-round stability in Fig. 11), so an Instance
// stores them per (job, GPU).
package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// JobID identifies a job within an Instance. IDs are dense indices
// into Instance.Jobs.
type JobID int

// Job describes one DML training job: the paper's tuple
// (a_n, w_n, R_n, D_r) plus bookkeeping used by the workload layer.
type Job struct {
	ID     JobID
	Name   string  // human-readable, e.g. "job-17(ResNet50)"
	Model  string  // model zoo name; informational at this layer
	Weight float64 // w_n, the job's weight in the objective
	// Arrival is a_n, the job's arrival time in seconds. Tasks of the
	// job cannot start earlier (constraint 4).
	Arrival float64
	// Rounds is |R_n|, the number of synchronized training rounds.
	Rounds int
	// Scale is |D_r|, the number of parallel tasks launched per round
	// (the job's fixed synchronization scale).
	Scale int
}

// NumTasks returns the total task count Rounds × Scale.
func (j *Job) NumTasks() int { return j.Rounds * j.Scale }

// TaskRef identifies a single task: the Index-th parallel task of
// round Round of job Job. Rounds and indices are zero-based.
type TaskRef struct {
	Job   JobID
	Round int
	Index int
}

func (t TaskRef) String() string {
	return fmt.Sprintf("j%d/r%d/t%d", t.Job, t.Round, t.Index)
}

// Instance is a complete offline scheduling problem: the jobs, the
// number of GPUs, and the per-(job, GPU) training and synchronization
// times. It is the sole input to every scheduling algorithm, which
// keeps the algorithms independent of how the times were produced
// (profiler, trace, or randomized property test).
type Instance struct {
	Jobs []*Job
	// NumGPUs is |M|.
	NumGPUs int
	// Train[j][m] is T^c for a task of job j on GPU m, seconds.
	Train [][]float64
	// Sync[j][m] is T^s for a task of job j on GPU m, seconds.
	Sync [][]float64
}

// Validate checks structural well-formedness of the instance itself
// (not of any schedule): positive dimensions, matching matrix shapes,
// positive times, and sane job fields.
func (in *Instance) Validate() error {
	if in.NumGPUs <= 0 {
		return fmt.Errorf("core: instance has %d GPUs", in.NumGPUs)
	}
	if len(in.Jobs) == 0 {
		return fmt.Errorf("core: instance has no jobs")
	}
	if len(in.Train) != len(in.Jobs) || len(in.Sync) != len(in.Jobs) {
		return fmt.Errorf("core: time matrices have %d/%d rows for %d jobs",
			len(in.Train), len(in.Sync), len(in.Jobs))
	}
	for j, job := range in.Jobs {
		if job.ID != JobID(j) {
			return fmt.Errorf("core: job at position %d has ID %d", j, job.ID)
		}
		if job.Rounds <= 0 || job.Scale <= 0 {
			return fmt.Errorf("core: job %d has rounds=%d scale=%d", j, job.Rounds, job.Scale)
		}
		if job.Weight <= 0 {
			return fmt.Errorf("core: job %d has non-positive weight %g", j, job.Weight)
		}
		if job.Arrival < 0 || math.IsNaN(job.Arrival) {
			return fmt.Errorf("core: job %d has invalid arrival %g", j, job.Arrival)
		}
		if len(in.Train[j]) != in.NumGPUs || len(in.Sync[j]) != in.NumGPUs {
			return fmt.Errorf("core: job %d time rows have %d/%d entries for %d GPUs",
				j, len(in.Train[j]), len(in.Sync[j]), in.NumGPUs)
		}
		for m := 0; m < in.NumGPUs; m++ {
			if in.Train[j][m] <= 0 || math.IsNaN(in.Train[j][m]) {
				return fmt.Errorf("core: job %d train time on GPU %d is %g", j, m, in.Train[j][m])
			}
			if in.Sync[j][m] < 0 || math.IsNaN(in.Sync[j][m]) {
				return fmt.Errorf("core: job %d sync time on GPU %d is %g", j, m, in.Sync[j][m])
			}
		}
	}
	return nil
}

// Tasks enumerates every task of every job in (job, round, index)
// order.
func (in *Instance) Tasks() []TaskRef {
	out := make([]TaskRef, 0, in.NumTasks())
	for _, j := range in.Jobs {
		for r := 0; r < j.Rounds; r++ {
			for k := 0; k < j.Scale; k++ {
				out = append(out, TaskRef{Job: j.ID, Round: r, Index: k})
			}
		}
	}
	return out
}

// NumTasks returns the total number of tasks across all jobs.
func (in *Instance) NumTasks() int {
	n := 0
	for _, j := range in.Jobs {
		n += j.NumTasks()
	}
	return n
}

// TotalWork returns the sum over all tasks of the *fastest* per-task
// training time — a crude lower bound on total GPU-seconds of work.
func (in *Instance) TotalWork() float64 {
	var w float64
	for _, j := range in.Jobs {
		fastest := math.Inf(1)
		for m := 0; m < in.NumGPUs; m++ {
			fastest = math.Min(fastest, in.Train[j.ID][m])
		}
		w += fastest * float64(j.NumTasks())
	}
	return w
}

// Alpha returns the paper's heterogeneity spread
// α = max_i { T^c,max_i / T^c,min_i, T^s,max_i / T^s,min_i }, the key
// quantity in the α(2+α) approximation bound. Sync ratios with a zero
// minimum are skipped (a zero sync time models a local, network-free
// update, for which the spread is meaningless).
func (in *Instance) Alpha() float64 {
	alpha := 1.0
	for _, j := range in.Jobs {
		cmin, cmax := math.Inf(1), 0.0
		smin, smax := math.Inf(1), 0.0
		for m := 0; m < in.NumGPUs; m++ {
			cmin = math.Min(cmin, in.Train[j.ID][m])
			cmax = math.Max(cmax, in.Train[j.ID][m])
			smin = math.Min(smin, in.Sync[j.ID][m])
			smax = math.Max(smax, in.Sync[j.ID][m])
		}
		alpha = math.Max(alpha, cmax/cmin)
		if smin > 0 {
			alpha = math.Max(alpha, smax/smin)
		}
	}
	return alpha
}

// Placement records the scheduler's decision for one task: the GPU m
// with y_{i,m}=1 and the planned start time x_i.
type Placement struct {
	GPU   int
	Start float64
}

// Schedule is a complete solution to an Instance: one placement per
// task. Per-GPU execution sequences (ordered by start time) are
// derived on demand; the executors consume only the sequences, so the
// planned start times are advisory for replay.
type Schedule struct {
	Placements map[TaskRef]Placement
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule {
	return &Schedule{Placements: make(map[TaskRef]Placement)}
}

// Place records the placement of a task, overwriting any previous
// placement of the same task.
func (s *Schedule) Place(t TaskRef, gpu int, start float64) {
	s.Placements[t] = Placement{GPU: gpu, Start: start}
}

// Sequences returns, for each GPU, the tasks assigned to it ordered by
// planned start time (ties broken by task identity for determinism).
func (s *Schedule) Sequences(numGPUs int) [][]TaskRef {
	// Sort (task, start) pairs rather than looking each comparison's
	// placements up in the map: the simulator replays one schedule per
	// run and this is on its setup critical path (see
	// docs/PERFORMANCE.md).
	type placed struct {
		t     TaskRef
		start float64
	}
	byGPU := make([][]placed, numGPUs)
	//lint:ordered buckets are fully sorted below before use
	for t, p := range s.Placements {
		byGPU[p.GPU] = append(byGPU[p.GPU], placed{t: t, start: p.Start})
	}
	seq := make([][]TaskRef, numGPUs)
	for m := range byGPU {
		tasks := byGPU[m]
		sort.Slice(tasks, func(a, b int) bool {
			if tasks[a].start != tasks[b].start {
				return tasks[a].start < tasks[b].start
			}
			return lessTask(tasks[a].t, tasks[b].t)
		})
		out := make([]TaskRef, len(tasks))
		for i, p := range tasks {
			out[i] = p.t
		}
		seq[m] = out
	}
	return seq
}

// placedTask pairs a task with its planned start for bucket sorting.
type placedTask struct {
	t     TaskRef
	start float64
}

// SeqBuffer owns the reusable storage behind SequencesInto. A pooled
// simulator keeps one per Simulator; once the backing arrays have
// grown to the schedule's size, deriving sequences allocates nothing.
type SeqBuffer struct {
	pairs   []placedTask
	refs    []TaskRef
	counts  []int
	buckets [][]placedTask
	seqs    [][]TaskRef
}

// SequencesInto is Sequences with caller-owned storage: the returned
// outer slice and every per-GPU sequence alias buf's backing arrays
// and are valid until the next SequencesInto call on the same buffer.
// The task order per GPU is identical to Sequences'.
func (s *Schedule) SequencesInto(buf *SeqBuffer, numGPUs int) [][]TaskRef {
	n := len(s.Placements)
	if cap(buf.counts) < numGPUs {
		buf.counts = make([]int, numGPUs)
	} else {
		buf.counts = buf.counts[:numGPUs]
		for i := range buf.counts {
			buf.counts[i] = 0
		}
	}
	//lint:ordered counting pass is order-independent
	for _, p := range s.Placements {
		buf.counts[p.GPU]++
	}
	if cap(buf.pairs) < n {
		buf.pairs = make([]placedTask, n)
	}
	if cap(buf.buckets) < numGPUs {
		buf.buckets = make([][]placedTask, numGPUs)
	} else {
		buf.buckets = buf.buckets[:numGPUs]
	}
	off := 0
	for m := 0; m < numGPUs; m++ {
		buf.buckets[m] = buf.pairs[off : off : off+buf.counts[m]]
		off += buf.counts[m]
	}
	//lint:ordered buckets are fully sorted below before use
	for t, p := range s.Placements {
		buf.buckets[p.GPU] = append(buf.buckets[p.GPU], placedTask{t: t, start: p.Start})
	}
	if cap(buf.seqs) < numGPUs {
		buf.seqs = make([][]TaskRef, numGPUs)
	} else {
		buf.seqs = buf.seqs[:numGPUs]
	}
	if cap(buf.refs) < n {
		buf.refs = make([]TaskRef, n)
	} else {
		buf.refs = buf.refs[:n]
	}
	off = 0
	for m := 0; m < numGPUs; m++ {
		tasks := buf.buckets[m]
		// (start, task) keys are unique — tasks are placed once — so the
		// unstable sort is deterministic and matches Sequences' order.
		slices.SortFunc(tasks, func(a, b placedTask) int {
			//lint:allow floateq exact comparison orders identical starts into the tie-break
			if a.start != b.start {
				if a.start < b.start {
					return -1
				}
				return 1
			}
			if a.t == b.t {
				return 0
			}
			if lessTask(a.t, b.t) {
				return -1
			}
			return 1
		})
		out := buf.refs[off : off+len(tasks) : off+len(tasks)]
		off += len(tasks)
		for i, p := range tasks {
			out[i] = p.t
		}
		buf.seqs[m] = out
	}
	return buf.seqs
}

func lessTask(a, b TaskRef) bool {
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	return a.Index < b.Index
}

// TaskEnd returns the planned completion (start + train + sync) of a
// placed task. The boolean is false if the task is not placed.
func (s *Schedule) TaskEnd(in *Instance, t TaskRef) (float64, bool) {
	p, ok := s.Placements[t]
	if !ok {
		return 0, false
	}
	return p.Start + in.Train[t.Job][p.GPU] + in.Sync[t.Job][p.GPU], true
}

// JobCompletions returns C_n for each job: the maximum task completion
// time over all of its tasks. Jobs with unplaced tasks report NaN.
func (s *Schedule) JobCompletions(in *Instance) []float64 {
	out := make([]float64, len(in.Jobs))
	for _, j := range in.Jobs {
		var c float64
		complete := true
	scan:
		for r := 0; r < j.Rounds; r++ {
			for k := 0; k < j.Scale; k++ {
				end, ok := s.TaskEnd(in, TaskRef{Job: j.ID, Round: r, Index: k})
				if !ok {
					complete = false
					break scan
				}
				c = math.Max(c, end)
			}
		}
		if complete {
			out[j.ID] = c
		} else {
			out[j.ID] = math.NaN()
		}
	}
	return out
}

// WeightedJCT returns Σ w_n·C_n, the paper's objective, using planned
// times. It returns NaN if any job is incomplete.
func (s *Schedule) WeightedJCT(in *Instance) float64 {
	var total float64
	for j, c := range s.JobCompletions(in) {
		if math.IsNaN(c) {
			return math.NaN()
		}
		total += in.Jobs[j].Weight * c
	}
	return total
}

// Makespan returns the latest planned task completion time.
func (s *Schedule) Makespan(in *Instance) float64 {
	var m float64
	//lint:ordered max over placements is commutative and exact
	for t := range s.Placements {
		if end, ok := s.TaskEnd(in, t); ok {
			m = math.Max(m, end)
		}
	}
	return m
}

// timeEps is the tolerance used by ValidateSchedule when comparing
// floating-point times.
const timeEps = 1e-6

// ApproxEqual reports whether a and b differ by at most eps. Engine
// code compares simulated times and costs through it (or an explicit
// tolerance) rather than with exact float equality, which diverges in
// the last ulp between algebraically equivalent computations — the
// harelint floateq analyzer enforces this.
func ApproxEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// ValidateSchedule checks a schedule against the paper's constraints:
//
//	(4) x_i ≥ a_n            — no task starts before its job arrives;
//	(5) Σ_m y_{i,m} = 1      — every task is placed on exactly one GPU;
//	(6)/(7) round barrier    — every round-(r+1) task starts at or
//	        after the completion (train + sync) of every round-r task;
//	(8) non-preemption       — tasks sharing a GPU do not overlap in
//	        their training intervals (sync overlaps the successor by
//	        design: communication is off the GPU's critical path).
//
// It returns nil for a feasible schedule and a descriptive error for
// the first violation found.
func ValidateSchedule(in *Instance, s *Schedule) error {
	if err := ValidatePlacements(in, s); err != nil {
		return err
	}
	return ValidateScheduleSeqs(in, s, s.Sequences(in.NumGPUs))
}

// ValidatePlacements checks the placement-local constraints — (5)
// every task placed exactly once on a real GPU, (4) no start before
// arrival — without deriving sequences. It must pass before sequences
// are derived at all: Sequences indexes buckets by the placement's GPU
// and would panic on a GPU that fails the range check here.
func ValidatePlacements(in *Instance, s *Schedule) error {
	// (5): every task placed exactly once, on a real GPU. The nested
	// loops visit tasks in the same (job, round, index) order as
	// in.Tasks() without materializing the slice.
	for _, j := range in.Jobs {
		for r := 0; r < j.Rounds; r++ {
			for k := 0; k < j.Scale; k++ {
				t := TaskRef{Job: j.ID, Round: r, Index: k}
				p, ok := s.Placements[t]
				if !ok {
					return fmt.Errorf("core: task %v is not placed (constraint 5)", t)
				}
				if p.GPU < 0 || p.GPU >= in.NumGPUs {
					return fmt.Errorf("core: task %v placed on invalid GPU %d", t, p.GPU)
				}
				if math.IsNaN(p.Start) || math.IsInf(p.Start, 0) {
					return fmt.Errorf("core: task %v has invalid start %g", t, p.Start)
				}
				// (4): arrival.
				if a := in.Jobs[t.Job].Arrival; p.Start < a-timeEps {
					return fmt.Errorf("core: task %v starts at %.6g before arrival %.6g (constraint 4)",
						t, p.Start, a)
				}
			}
		}
	}
	// Extraneous placements indicate a buggy scheduler.
	if len(s.Placements) != in.NumTasks() {
		return fmt.Errorf("core: schedule has %d placements for %d tasks",
			len(s.Placements), in.NumTasks())
	}
	return nil
}

// ValidateScheduleSeqs checks the ordering constraints (7) and (8)
// against caller-provided per-GPU sequences (from Sequences or
// SequencesInto), letting a caller that already derived sequences
// validate without deriving them a second time. ValidatePlacements
// must have passed first.
func ValidateScheduleSeqs(in *Instance, s *Schedule, seqs [][]TaskRef) error {
	// (7): round barrier within each job.
	for _, j := range in.Jobs {
		prevEnd := 0.0
		for r := 0; r < j.Rounds; r++ {
			roundEnd := 0.0
			for k := 0; k < j.Scale; k++ {
				t := TaskRef{Job: j.ID, Round: r, Index: k}
				p := s.Placements[t]
				if r > 0 && p.Start < prevEnd-timeEps {
					return fmt.Errorf("core: task %v starts at %.6g before round %d barrier %.6g (constraint 7)",
						t, p.Start, r-1, prevEnd)
				}
				end, _ := s.TaskEnd(in, t)
				roundEnd = math.Max(roundEnd, end)
			}
			prevEnd = roundEnd
		}
	}
	// (8): non-overlap of training intervals per GPU. The training
	// occupancy of a task is [start, start+T^c); sync is off-GPU.
	for m, seq := range seqs {
		var prevBusyEnd float64
		var prevTask TaskRef
		for i, t := range seq {
			p := s.Placements[t]
			if i > 0 && p.Start < prevBusyEnd-timeEps {
				return fmt.Errorf("core: tasks %v and %v overlap on GPU %d (%.6g < %.6g, constraint 8)",
					prevTask, t, m, p.Start, prevBusyEnd)
			}
			prevBusyEnd = p.Start + in.Train[t.Job][m]
			prevTask = t
		}
	}
	return nil
}

// CloneJobs deep-copies a job slice; helpful for planners that mutate
// job metadata while searching.
func CloneJobs(jobs []*Job) []*Job {
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		cp := *j
		out[i] = &cp
	}
	return out
}
