// Package store is the checkpoint store of the testbed — the stand-in
// for the HDFS deployment in the paper's system diagram (Fig. 9).
// Parameter servers save per-job model checkpoints here after every
// synchronized round; executors load them when a task of the job is
// (re)scheduled onto a GPU whose memory no longer holds the model.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store persists named binary blobs.
type Store interface {
	// Save overwrites key with data.
	Save(key string, data []byte) error
	// Load returns the blob at key, or an error if absent.
	Load(key string) ([]byte, error)
	// Exists reports whether key is present.
	Exists(key string) bool
	// Keys lists all stored keys, sorted.
	Keys() []string
}

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Save implements Store.
func (s *MemStore) Save(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
	return nil
}

// Load implements Store.
func (s *MemStore) Load(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("store: key %q not found", key)
	}
	return append([]byte(nil), d...), nil
}

// Exists implements Store.
func (s *MemStore) Exists(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.m[key]
	return ok
}

// Keys implements Store.
func (s *MemStore) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DirStore persists blobs as files under a directory; keys map to
// file names with '/' replaced by '__'.
type DirStore struct {
	dir string
	mu  sync.Mutex
}

// NewDir returns a DirStore rooted at dir, creating it if needed.
func NewDir(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, strings.ReplaceAll(key, "/", "__"))
}

// Save implements Store. The write is crash-safe: data goes to a temp
// file in the same directory, is fsynced, and is then atomically
// renamed over the destination, with a final fsync of the directory so
// the rename itself is durable. A reader therefore never observes a
// torn or partially-written blob, even if the process dies mid-Save —
// a requirement for the coordinator WAL snapshots built on DirStore.
func (s *DirStore) Save(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path(key) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a preceding rename is durable. Best
// effort on platforms where directories cannot be opened for sync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems reject fsync on directories; the rename
		// already happened, so don't fail the Save over it.
		return nil
	}
	return nil
}

// Load implements Store.
func (s *DirStore) Load(key string) ([]byte, error) {
	return os.ReadFile(s.path(key))
}

// Exists implements Store.
func (s *DirStore) Exists(key string) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Keys implements Store.
func (s *DirStore) Keys() []string {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".tmp") {
			out = append(out, strings.ReplaceAll(e.Name(), "__", "/"))
		}
	}
	sort.Strings(out)
	return out
}

// EncodeParams serializes a float64 parameter vector (a checkpoint).
func EncodeParams(w []float64) []byte {
	buf := bytes.NewBuffer(make([]byte, 0, 8+8*len(w)))
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(w)))
	buf.Write(n[:])
	for _, x := range w {
		binary.LittleEndian.PutUint64(n[:], math.Float64bits(x))
		buf.Write(n[:])
	}
	return buf.Bytes()
}

// DecodeParams parses a checkpoint written by EncodeParams.
func DecodeParams(data []byte) ([]float64, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("store: checkpoint too short (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data[:8])
	if uint64(len(data)-8) != 8*n {
		return nil, fmt.Errorf("store: checkpoint declares %d params but holds %d bytes", n, len(data)-8)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	return out, nil
}

// CheckpointKey names a job's checkpoint after a given round.
func CheckpointKey(jobID int, round int) string {
	return fmt.Sprintf("ckpt/job%04d/round%06d", jobID, round)
}

// LatestKey names a job's rolling "latest" checkpoint.
func LatestKey(jobID int) string { return fmt.Sprintf("ckpt/job%04d/latest", jobID) }
