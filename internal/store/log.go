// Append-only record logs backing the coordinator write-ahead log
// (docs/ROBUSTNESS.md). A Log stores opaque binary records in append
// order; the durable implementation (DirLog) frames each record as
//
//	[4-byte little-endian length][4-byte CRC-32 (IEEE)][payload]
//
// fsyncs every append, and truncates a torn tail (a record cut short
// by a crash mid-append) when reopened — so readers only ever see a
// prefix of fully-written records.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Log is an append-only sequence of binary records.
type Log interface {
	// Append durably adds one record.
	Append(rec []byte) error
	// Records returns all records in append order.
	Records() ([][]byte, error)
	// Reset discards all records.
	Reset() error
	// Close releases resources; the log may not be used afterwards.
	Close() error
}

// MemLog is an in-memory Log, safe for concurrent use.
type MemLog struct {
	mu   sync.Mutex
	recs [][]byte
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (l *MemLog) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, append([]byte(nil), rec...))
	return nil
}

// Records implements Log.
func (l *MemLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.recs))
	for i, r := range l.recs {
		out[i] = append([]byte(nil), r...)
	}
	return out, nil
}

// Reset implements Log.
func (l *MemLog) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = nil
	return nil
}

// Close implements Log.
func (l *MemLog) Close() error { return nil }

const logHeaderLen = 8 // 4-byte length + 4-byte CRC-32

// DirLog is a durable Log backed by a single file.
type DirLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenDirLog opens (or creates) the log file at path. Any torn tail —
// bytes after the last fully-framed, CRC-valid record — is truncated
// away, so a crash mid-append never corrupts recovery.
func OpenDirLog(path string) (*DirLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log %s: %w", path, err)
	}
	valid, err := scanLog(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn log tail %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &DirLog{path: path, f: f}, nil
}

// scanLog returns the byte offset of the end of the last fully valid
// record in f.
func scanLog(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var off int64
	hdr := make([]byte, logHeaderLen)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, nil // corrupted record: drop it and everything after
		}
		off += logHeaderLen + int64(n)
	}
}

// Append implements Log. The record is framed, written, and fsynced
// before Append returns: a successful Append survives a crash.
func (l *DirLog) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("store: log %s is closed", l.path)
	}
	buf := make([]byte, logHeaderLen+len(rec))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(rec))
	copy(buf[logHeaderLen:], rec)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("store: append log %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: sync log %s: %w", l.path, err)
	}
	return nil
}

// Records implements Log.
func (l *DirLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, fmt.Errorf("store: log %s is closed", l.path)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var out [][]byte
	hdr := make([]byte, logHeaderLen)
	for {
		if _, err := io.ReadFull(l.f, hdr); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		out = append(out, payload)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return out, nil
}

// Reset implements Log.
func (l *DirLog) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("store: log %s is closed", l.path)
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close implements Log.
func (l *DirLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
