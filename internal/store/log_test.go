package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func testLogRoundTrip(t *testing.T, l Log) {
	t.Helper()
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-record")}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := l.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	got, err = l.Records()
	if err != nil {
		t.Fatalf("Records after Reset: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records after Reset, want 0", len(got))
	}
}

func TestMemLogRoundTrip(t *testing.T) { testLogRoundTrip(t, NewMemLog()) }

func TestDirLogRoundTrip(t *testing.T) {
	l, err := OpenDirLog(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testLogRoundTrip(t, l)
}

func TestDirLogSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenDirLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenDirLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records after reopen, want 5", len(recs))
	}
	if string(recs[4]) != "rec-4" {
		t.Fatalf("last record = %q, want rec-4", recs[4])
	}
	// Appends continue after the existing tail.
	if err := l2.Append([]byte("rec-5")); err != nil {
		t.Fatal(err)
	}
	recs, err = l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || string(recs[5]) != "rec-5" {
		t.Fatalf("after reopen+append: got %d records (last %q)", len(recs), recs[len(recs)-1])
	}
}

func TestDirLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenDirLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("good-one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("good-two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a header that promises more payload
	// than was written.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], 100)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE([]byte("x")))
	if _, err := f.Write(append(hdr[:], []byte("torn")...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenDirLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records after torn tail, want 2", len(recs))
	}
	// New appends land where the torn tail was cut.
	if err := l2.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	recs, _ = l2.Records()
	if len(recs) != 3 || string(recs[2]) != "after-crash" {
		t.Fatalf("append after truncation: got %d records (last %q)", len(recs), recs[len(recs)-1])
	}
}

func TestDirLogTruncatesCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenDirLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("will-be-corrupted")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a payload byte of the second record on disk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenDirLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "intact" {
		t.Fatalf("got %d records after corruption, want 1 intact", len(recs))
	}
}

func TestDirStoreSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("snap/one", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("snap/one", []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("snap/one")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-longer" {
		t.Fatalf("Load = %q, want v2-longer", got)
	}
	// No temp files left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
