package store

import (
	"sync"
	"testing"
	"testing/quick"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	ds, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "dir": ds}
}

func TestSaveLoadExists(t *testing.T) {
	//lint:ordered independent subtests; t.Run isolates each backend
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if s.Exists("k") {
				t.Error("phantom key")
			}
			if err := s.Save("k", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save("k", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Load("k")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "v2" {
				t.Errorf("got %q", got)
			}
			if !s.Exists("k") {
				t.Error("Exists false after Save")
			}
			if _, err := s.Load("missing"); err == nil {
				t.Error("missing key loaded")
			}
		})
	}
}

func TestKeysSorted(t *testing.T) {
	//lint:ordered independent subtests; t.Run isolates each backend
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"b", "a", "c"} {
				if err := s.Save(k, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			keys := s.Keys()
			if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
				t.Errorf("keys %v", keys)
			}
		})
	}
}

func TestSlashKeysOnDisk(t *testing.T) {
	ds, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CheckpointKey(3, 7)
	if err := ds.Save(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Load(key)
	if err != nil || string(got) != "x" {
		t.Fatalf("load %q: %v", got, err)
	}
	if keys := ds.Keys(); len(keys) != 1 || keys[0] != key {
		t.Errorf("keys %v", keys)
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMem()
	data := []byte{1, 2, 3}
	if err := s.Save("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // caller mutates its buffer
	got, _ := s.Load("k")
	if got[0] != 1 {
		t.Error("store aliased the caller's buffer")
	}
	got[1] = 99 // reader mutates the returned buffer
	got2, _ := s.Load("k")
	if got2[1] != 2 {
		t.Error("store returned an aliased buffer")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewMem()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := LatestKey(g)
			for i := 0; i < 200; i++ {
				if err := s.Save(key, EncodeParams([]float64{float64(g), float64(i)})); err != nil {
					t.Error(err)
					return
				}
				data, err := s.Load(key)
				if err != nil {
					t.Error(err)
					return
				}
				w, err := DecodeParams(data)
				if err != nil || w[0] != float64(g) {
					t.Errorf("cross-goroutine corruption: %v %v", w, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestParamsCodecRoundTrip(t *testing.T) {
	f := func(w []float64) bool {
		got, err := DecodeParams(EncodeParams(w))
		if err != nil {
			return false
		}
		if len(got) != len(w) {
			return false
		}
		for i := range w {
			// NaN-safe bitwise comparison via re-encode.
			if got[i] != w[i] && !(w[i] != w[i] && got[i] != got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := DecodeParams([]byte{1, 2}); err == nil {
		t.Error("short blob accepted")
	}
	blob := EncodeParams([]float64{1, 2, 3})
	if _, err := DecodeParams(blob[:len(blob)-4]); err == nil {
		t.Error("truncated blob accepted")
	}
}

func TestKeyFormats(t *testing.T) {
	if CheckpointKey(1, 2) == CheckpointKey(1, 3) {
		t.Error("round not in key")
	}
	if LatestKey(1) == LatestKey(2) {
		t.Error("job not in key")
	}
}
