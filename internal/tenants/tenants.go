// Package tenants builds large multi-tenant replay traces: many
// mutually independent tenant sub-problems — each its own workload,
// profiled instance, GPU partition, and Hare schedule — merged into
// one global (instance, schedule, cluster) triple. Because tenants
// never share a GPU or a job, the merged schedule's contact graph has
// one connected component per tenant, which is exactly the shape the
// simulator's sharded replay path (sim.Options.Parallel) exploits.
// The package exists to scale benchmarks and equivalence tests to
// million-job traces without inventing synthetic schedules by hand.
package tenants

import (
	"fmt"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/model"
	"hare/internal/profile"
	"hare/internal/sched"
	"hare/internal/trace"
	"hare/internal/workload"
)

// Config sizes a multi-tenant trace. The zero value is upgraded to a
// small smoke-test scale by Defaults.
type Config struct {
	// Tenants is the number of independent tenants (= shards).
	Tenants int
	// JobsPerTenant is each tenant's job count.
	JobsPerTenant int
	// GPUsPerTenant is each tenant's private GPU partition size.
	GPUsPerTenant int
	// Level is each partition's heterogeneity level.
	Level cluster.HeterogeneityLevel
	// HorizonSeconds spreads each tenant's arrivals.
	HorizonSeconds float64
	// RoundsScale multiplies per-model round counts.
	RoundsScale float64
	// Seed drives all randomness; tenant t draws from seed
	// Seed + t*workload.TenantSeedStride.
	Seed int64
}

// Defaults fills in a small smoke-test scale.
func (c Config) Defaults() Config {
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.JobsPerTenant == 0 {
		c.JobsPerTenant = 12
	}
	if c.GPUsPerTenant == 0 {
		c.GPUsPerTenant = 8
	}
	if c.Level == 0 {
		c.Level = cluster.HighHeterogeneity
	}
	if c.RoundsScale == 0 {
		c.RoundsScale = 0.1
	}
	if c.HorizonSeconds == 0 {
		c.HorizonSeconds = 300 * c.RoundsScale
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Trace is a merged multi-tenant replay problem. Instance, Schedule,
// Cluster and Models feed sim.Run directly; TenantOfJob maps each
// global job back to its tenant.
type Trace struct {
	Instance    *core.Instance
	Schedule    *core.Schedule
	Cluster     *cluster.Cluster
	Models      []*model.Model
	TenantOfJob []int
}

// NumJobs returns the global job count.
func (tr *Trace) NumJobs() int { return len(tr.Instance.Jobs) }

// Build constructs the merged trace. Per tenant it generates a
// workload, profiles it against the tenant's private partition, and
// plans it with Hare; the per-tenant schedules are then re-indexed
// onto the global GPU/job id spaces. Off-partition matrix columns are
// filled with the same-position profile of the tenant's own partition
// (every partition has an identical type layout), so the global
// instance validates while the schedule never touches those columns.
func Build(cfg Config) (*Trace, error) {
	cfg = cfg.Defaults()
	if cfg.Tenants < 1 || cfg.JobsPerTenant < 1 || cfg.GPUsPerTenant < 1 {
		return nil, fmt.Errorf("tenants: config %+v has non-positive dimensions", cfg)
	}
	subCl := cluster.Heterogeneous(cfg.Level, cfg.GPUsPerTenant)
	numGPUs := cfg.Tenants * cfg.GPUsPerTenant
	numJobs := cfg.Tenants * cfg.JobsPerTenant

	pops := workload.GenerateTenants(workload.Options{
		NumJobs:     cfg.JobsPerTenant,
		RoundsScale: cfg.RoundsScale,
		MaxSync:     subCl.Size(),
		Seed:        cfg.Seed + 2,
	}, cfg.Tenants)

	tr := &Trace{
		Instance: &core.Instance{
			Jobs:    make([]*core.Job, 0, numJobs),
			NumGPUs: numGPUs,
			Train:   make([][]float64, 0, numJobs),
			Sync:    make([][]float64, 0, numJobs),
		},
		Schedule:    core.NewSchedule(),
		Cluster:     &cluster.Cluster{NetworkBps: subCl.NetworkBps, IntraHostBps: subCl.IntraHostBps},
		Models:      make([]*model.Model, 0, numJobs),
		TenantOfJob: make([]int, 0, numJobs),
	}
	hostsPerTenant := subCl.Hosts
	for t := 0; t < cfg.Tenants; t++ {
		seed := cfg.Seed + int64(t)*workload.TenantSeedStride
		specs := pops[t]
		arr := trace.Arrivals(cfg.JobsPerTenant, cfg.HorizonSeconds, seed+1)
		for i, s := range specs {
			s.Job.Arrival = arr[i]
		}

		// Plan the tenant in its local id space: dense local job IDs
		// ascending with the global ones, private GPUs 0..G-1.
		localJobs := make([]*core.Job, len(specs))
		jobSpecs := make([]profile.JobSpec, len(specs))
		for i, s := range specs {
			j := *s.Job
			j.ID = core.JobID(i)
			localJobs[i] = &j
			jobSpecs[i] = s
		}
		prof := profile.New(profile.Options{Seed: seed + 3})
		subIn, err := prof.BuildInstance(localJobs, jobSpecs, subCl)
		if err != nil {
			return nil, fmt.Errorf("tenants: tenant %d: %w", t, err)
		}
		subSch, err := sched.NewHare().Schedule(subIn)
		if err != nil {
			return nil, fmt.Errorf("tenants: tenant %d: %w", t, err)
		}

		gpuOff := t * cfg.GPUsPerTenant
		jobOff := t * cfg.JobsPerTenant
		for i, s := range specs {
			tr.Instance.Jobs = append(tr.Instance.Jobs, s.Job)
			tr.Models = append(tr.Models, model.MustByName(s.Model))
			tr.TenantOfJob = append(tr.TenantOfJob, t)
			// Off-partition columns repeat the tenant's own profile at
			// the same within-partition position (identical GPU type).
			train := make([]float64, numGPUs)
			sync := make([]float64, numGPUs)
			for t2 := 0; t2 < cfg.Tenants; t2++ {
				copy(train[t2*cfg.GPUsPerTenant:], subIn.Train[i])
				copy(sync[t2*cfg.GPUsPerTenant:], subIn.Sync[i])
			}
			tr.Instance.Train = append(tr.Instance.Train, train)
			tr.Instance.Sync = append(tr.Instance.Sync, sync)
		}
		//lint:ordered placements are copied into a map keyed by task; order is immaterial
		for tref, p := range subSch.Placements {
			gt := core.TaskRef{Job: tref.Job + core.JobID(jobOff), Round: tref.Round, Index: tref.Index}
			tr.Schedule.Place(gt, p.GPU+gpuOff, p.Start)
		}
		for _, g := range subCl.GPUs {
			tr.Cluster.GPUs = append(tr.Cluster.GPUs, cluster.GPU{
				ID:   g.ID + gpuOff,
				Type: g.Type,
				Host: g.Host + t*hostsPerTenant,
			})
		}
	}
	tr.Cluster.Hosts = cfg.Tenants * hostsPerTenant
	if err := tr.Instance.Validate(); err != nil {
		return nil, fmt.Errorf("tenants: merged instance invalid: %w", err)
	}
	if err := core.ValidateSchedule(tr.Instance, tr.Schedule); err != nil {
		return nil, fmt.Errorf("tenants: merged schedule invalid: %w", err)
	}
	return tr, nil
}
