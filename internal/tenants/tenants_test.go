package tenants

import (
	"testing"

	"hare/internal/sim"
)

func TestBuildDeterministicAndReplayable(t *testing.T) {
	cfg := Config{Tenants: 3, JobsPerTenant: 5, GPUsPerTenant: 6, RoundsScale: 0.05, Seed: 7}
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumJobs() != 15 || a.Instance.NumGPUs != 18 || len(a.TenantOfJob) != 15 {
		t.Fatalf("unexpected shape: %d jobs, %d GPUs", a.NumJobs(), a.Instance.NumGPUs)
	}
	for j, job := range a.Instance.Jobs {
		if int(job.ID) != j {
			t.Fatalf("job %d has ID %d; want dense global ids", j, job.ID)
		}
		if want := j / 5; a.TenantOfJob[j] != want {
			t.Fatalf("job %d assigned tenant %d, want %d", j, a.TenantOfJob[j], want)
		}
	}
	if len(a.Schedule.Placements) != len(b.Schedule.Placements) {
		t.Fatalf("build not deterministic: %d vs %d placements",
			len(a.Schedule.Placements), len(b.Schedule.Placements))
	}
	//lint:ordered comparing map contents key-by-key is order-independent
	for tref, p := range a.Schedule.Placements {
		if q, ok := b.Schedule.Placements[tref]; !ok || p != q {
			t.Fatalf("build not deterministic at %v: %+v vs %+v", tref, p, q)
		}
	}

	// Tenant partitions must be disjoint: every placement of a job
	// stays on its tenant's GPUs.
	//lint:ordered disjointness check is order-independent
	for tref, p := range a.Schedule.Placements {
		tenant := a.TenantOfJob[tref.Job]
		if p.GPU/6 != tenant {
			t.Fatalf("task %v of tenant %d placed on GPU %d outside its partition", tref, tenant, p.GPU)
		}
	}

	res, err := sim.Run(a.Instance, a.Schedule, a.Cluster, a.Models, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.WeightedJCT <= 0 {
		t.Fatalf("degenerate replay: makespan=%g wjct=%g", res.Makespan, res.WeightedJCT)
	}
}

func TestBuildDefaults(t *testing.T) {
	tr, err := Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumJobs() != 4*12 || tr.Instance.NumGPUs != 4*8 {
		t.Fatalf("defaults produced %d jobs on %d GPUs", tr.NumJobs(), tr.Instance.NumGPUs)
	}
}
