package chaos

import (
	"fmt"

	"hare/internal/obs"
	"hare/internal/obs/dtrace"
)

// Per-run distributed tracing: when Options.TraceDir is set, the soak
// harness gives the coordinator and each executor its own
// dtrace.ProcStream (durable JSONL + flight ring), dumps flight rings
// at forensic moments (coordinator kills, violations), and renders the
// cross-process merge as merged_trace.json next to the streams. The
// caller's shared Recorder keeps seeing every event — its sinks ride
// along as extra sinks of each per-process recorder.

// flightCap is each process's flight-ring capacity. Sized to hold the
// full RPC churn of several rounds — enough context around a violation
// without unbounded memory.
const flightCap = 512

// runTrace is one soak run's tracing state.
type runTrace struct {
	fleet *dtrace.Fleet
}

// newRunTrace builds the per-process streams, or returns nil when
// tracing is off (empty TraceDir).
func newRunTrace(dir string, gpus int, shared *obs.Recorder) (*runTrace, error) {
	if dir == "" {
		return nil, nil
	}
	fleet, err := dtrace.NewFleet(dir, gpus, flightCap, shared.Sinks()...)
	if err != nil {
		return nil, fmt.Errorf("chaos: trace: %w", err)
	}
	return &runTrace{fleet: fleet}, nil
}

// coordRec is the coordinator's recorder (the caller's shared recorder
// when tracing is off). The same stream spans every coordinator
// incarnation of the run, so seq stays monotone across recoveries.
func (t *runTrace) coordRec(def *obs.Recorder) *obs.Recorder {
	if t == nil {
		return def
	}
	return t.fleet.CoordRecorder(def)
}

// execRec is GPU g's recorder (shared recorder when tracing is off).
func (t *runTrace) execRec(g int, def *obs.Recorder) *obs.Recorder {
	if t == nil {
		return def
	}
	return t.fleet.ExecRecorder(g, def)
}

// onKill captures forensics at a coordinator kill: the coordinator's
// flight ring (the events leading into the crash) plus an fsync of
// every stream's tail.
func (t *runTrace) onKill() {
	if t == nil {
		return
	}
	_ = t.fleet.Coord.DumpFlight()
	t.fleet.Sync()
}

// finish ends the run's tracing: on a violation every process's flight
// ring is dumped first, then all streams are closed (flush + fsync) and
// the cross-process merge is written as merged_trace.json. Merge
// failures are reported but never override the run's outcome.
func (t *runTrace) finish(violated bool) error {
	if t == nil {
		return nil
	}
	if violated {
		t.fleet.DumpFlights()
	}
	if err := t.fleet.Close(); err != nil {
		return fmt.Errorf("chaos: merge trace: %w", err)
	}
	return nil
}
