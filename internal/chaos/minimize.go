package chaos

import (
	"fmt"

	"hare/internal/faults"
)

// maxMinimizeRuns caps the minimizer's total re-runs so a flaky or
// slow violation cannot stall a CI job indefinitely.
const maxMinimizeRuns = 24

// Minimize shrinks a violating fault spec by greedy clause removal:
// for each ingredient (drop, dup, reorder, delay, then each partition,
// outage and failure individually, then the transient rate and
// stragglers) it re-runs the seed's workload without that clause and
// keeps the removal whenever the violation persists. Two sweeps, since
// a removal can unlock earlier candidates. Returns the smallest spec
// that still violates and the number of re-runs spent. If the original
// spec no longer reproduces (a timing-dependent finding), the spec is
// returned unchanged with reproduced == false.
func Minimize(seed int64, spec string, opts Options) (minSpec string, runs int, reproduced bool, err error) {
	// The minimizer owns journal lifetime: every re-run gets a fresh
	// in-memory journal regardless of what the caller's runs used.
	// Tracing is off during the search — dozens of probe runs would
	// overwrite each other's streams; the caller re-runs the minimized
	// spec with a TraceDir to capture its timeline.
	opts.Journal = nil
	opts.TraceDir = ""
	jobs := GenerateScenario(seed).Jobs
	if opts.Jobs > 0 {
		jobs = opts.Jobs
	}
	h, err := newHarness(seed, jobs, opts)
	if err != nil {
		return spec, 0, false, err
	}
	cur, err := faults.Parse(spec)
	if err != nil {
		return spec, 0, false, err
	}

	violates := func(p *faults.Plan) (bool, error) {
		runs++
		out := h.run(p)
		if out.Err != nil {
			return false, out.Err
		}
		return out.Violation != nil, nil
	}

	// Confirm the violation reproduces at all (twice — chaos runs race
	// real clocks, so one clean run is not an acquittal).
	confirmed := false
	for i := 0; i < 2 && !confirmed; i++ {
		v, verr := violates(cur)
		if verr != nil {
			return spec, runs, false, verr
		}
		confirmed = v
	}
	if !confirmed {
		return spec, runs, false, nil
	}

	for sweep := 0; sweep < 2; sweep++ {
		shrunk := false
		for _, cand := range removals(cur) {
			if runs >= maxMinimizeRuns {
				return cur.String(), runs, true, nil
			}
			v, verr := violates(cand.plan)
			if verr != nil {
				return cur.String(), runs, true, verr
			}
			if v {
				opts.logf("minimize seed %d: dropped %s, violation persists", seed, cand.what)
				cur = cand.plan
				shrunk = true
			}
		}
		if !shrunk {
			break
		}
	}
	return cur.String(), runs, true, nil
}

type removal struct {
	what string
	plan *faults.Plan
}

// removals enumerates single-clause reductions of a plan.
func removals(p *faults.Plan) []removal {
	var out []removal
	add := func(what string, mutate func(*faults.Plan)) {
		c := clonePlan(p)
		mutate(c)
		if c.Net.Empty() {
			c.Net = nil
		}
		out = append(out, removal{what: what, plan: c})
	}
	n := p.NetModel()
	if n != nil && n.Drop != 0 {
		add("netdrop", func(c *faults.Plan) { c.Net.Drop = 0 })
	}
	if n != nil && n.Dup != 0 {
		add("netdup", func(c *faults.Plan) { c.Net.Dup = 0 })
	}
	if n != nil && n.Reorder != 0 {
		add("netreorder", func(c *faults.Plan) { c.Net.Reorder = 0 })
	}
	if n != nil && (n.DelayMin != 0 || n.DelayMax != 0) {
		add("netdelay", func(c *faults.Plan) { c.Net.DelayMin, c.Net.DelayMax = 0, 0 })
	}
	if n != nil {
		for i := range n.Partitions {
			add(fmt.Sprintf("partition %d", i), func(c *faults.Plan) {
				c.Net.Partitions = append(c.Net.Partitions[:i:i], c.Net.Partitions[i+1:]...)
			})
		}
		for i := range n.CoordDowns {
			add(fmt.Sprintf("codown %d", i), func(c *faults.Plan) {
				c.Net.CoordDowns = append(c.Net.CoordDowns[:i:i], c.Net.CoordDowns[i+1:]...)
			})
		}
	}
	for i := range p.Failures {
		add(fmt.Sprintf("failure of GPU %d", p.Failures[i].GPU), func(c *faults.Plan) {
			c.Failures = append(c.Failures[:i:i], c.Failures[i+1:]...)
		})
	}
	for i := range p.Stragglers {
		add(fmt.Sprintf("straggler on GPU %d", p.Stragglers[i].GPU), func(c *faults.Plan) {
			c.Stragglers = append(c.Stragglers[:i:i], c.Stragglers[i+1:]...)
		})
	}
	if p.Rate != 0 {
		add("transient rate", func(c *faults.Plan) { c.Rate = 0 })
	}
	return out
}

// clonePlan deep-copies a fault plan so removals don't alias.
func clonePlan(p *faults.Plan) *faults.Plan {
	c := &faults.Plan{Rate: p.Rate, Seed: p.Seed}
	c.Failures = append([]faults.GPUFailure(nil), p.Failures...)
	c.Stragglers = append([]faults.Straggler(nil), p.Stragglers...)
	if p.Net != nil {
		nc := *p.Net
		nc.Partitions = append([]faults.Partition(nil), p.Net.Partitions...)
		nc.CoordDowns = append([]faults.CoordDown(nil), p.Net.CoordDowns...)
		c.Net = &nc
	}
	return c
}
