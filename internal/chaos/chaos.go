package chaos

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/faults"
	"hare/internal/model"
	"hare/internal/obs"
	"hare/internal/rpcnet"
	"hare/internal/sched"
	"hare/internal/store"
	"hare/internal/testbed"
	"hare/internal/workload"
)

// Detection parameters shared by every soak run. The scenario ranges
// in GenerateScenario are calibrated against these: a partition must
// end before a lease can expire, and reconnect grace must outlast the
// worst-case executor backoff ladder across a coordinator outage.
const (
	soakHeartbeat  = 5 * time.Millisecond
	soakLease      = 400 * time.Millisecond
	soakGrace      = 2 * time.Second
	soakSnapEvery  = 8
	soakReconnects = 50
	// paramTol bounds the final-checkpoint divergence from a
	// fault-free run; gradients are per-task deterministic, so only
	// float summation order may differ.
	paramTol = 1e-9
)

// Options configures soak runs.
type Options struct {
	// Jobs overrides the scenario's workload size (0 keeps it).
	Jobs int
	// TimeScale is the testbed clock scale (default 1e-3).
	TimeScale float64
	// Journal, when set, backs the run's WAL/snapshots (and survives
	// as an artifact on violation). Nil uses a fresh in-memory journal
	// per run.
	Journal *rpcnet.Journal
	// Watchdog bounds one run's wall time; exceeding it is a liveness
	// violation (lost or orphaned tasks). Default 90s.
	Watchdog time.Duration
	// Recorder and Metrics observe the run. Both optional.
	Recorder *obs.Recorder
	Metrics  *obs.Registry
	// TraceDir, when set, captures distributed traces: one
	// <proc>.events.jsonl per process (coord, gpu0..gpuN), flight-ring
	// dumps at kills and violations, and the cross-process merge as
	// merged_trace.json. The Recorder's sinks still see every event.
	TraceDir string
	// Logf, when set, receives progress lines (e.g. t.Logf or a -v
	// printer).
	Logf func(format string, args ...any)
}

func (o Options) timeScale() float64 {
	if o.TimeScale <= 0 {
		return 1e-3
	}
	return o.TimeScale
}

func (o Options) watchdog() time.Duration {
	if o.Watchdog <= 0 {
		return 90 * time.Second
	}
	return o.Watchdog
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Violation is one broken invariant: the seed and spec reproduce it,
// Invariant names the property, Detail says what was observed.
type Violation struct {
	Seed      int64
	Spec      string
	Invariant string
	Detail    string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("chaos seed %d: invariant %q violated: %s (repro: -seeds 1 -start %d -spec %q)",
		v.Seed, v.Invariant, v.Detail, v.Seed, v.Spec)
}

// Outcome summarizes one soak run.
type Outcome struct {
	Seed     int64
	Spec     string
	Jobs     int
	Tasks    int
	Kills    int
	Makespan float64
	// Violation is nil for a clean run. Err reports an infrastructure
	// failure (workload could not even be built) — neither clean nor a
	// finding.
	Violation *Violation
	Err       error
}

// Run soaks one seed: generate its scenario, resolve it against the
// workload's planned makespan, execute, check invariants.
func Run(seed int64, opts Options) Outcome {
	sc := GenerateScenario(seed)
	jobs := sc.Jobs
	if opts.Jobs > 0 {
		jobs = opts.Jobs
	}
	h, err := newHarness(seed, jobs, opts)
	if err != nil {
		return Outcome{Seed: seed, Err: err}
	}
	return h.run(sc.Resolve(h.makespan))
}

// RunSpec soaks one seed under an explicit -fault-spec instead of the
// generated scenario (times in the spec are absolute simulated
// seconds, as printed by a violation).
func RunSpec(seed int64, spec string, opts Options) Outcome {
	jobs := GenerateScenario(seed).Jobs
	if opts.Jobs > 0 {
		jobs = opts.Jobs
	}
	h, err := newHarness(seed, jobs, opts)
	if err != nil {
		return Outcome{Seed: seed, Err: err}
	}
	fplan, err := faults.Parse(spec)
	if err != nil {
		return Outcome{Seed: seed, Err: err}
	}
	return h.run(fplan)
}

// harness holds one seed's workload, plan and fault-free reference so
// the minimizer can re-run many fault plans against identical inputs.
type harness struct {
	seed   int64
	opts   Options
	cl     *cluster.Cluster
	in     *core.Instance
	plan   *core.Schedule
	models []*model.Model
	// makespan is the fault-free planned makespan (simulated seconds)
	// that scenario fractions resolve against.
	makespan float64
	// ref is each job's final parameters from a fault-free in-process
	// run of the same plan.
	ref [][]float64
}

func newHarness(seed int64, jobs int, opts Options) (*harness, error) {
	cl := cluster.New([]cluster.Spec{
		{Type: cluster.V100, Count: 2}, {Type: cluster.T4, Count: 1},
	}, 4)
	specs := workload.Generate(workload.Options{
		NumJobs: jobs, RoundsScale: 0.05, MaxSync: cl.Size(), Seed: seed,
	})
	in := &core.Instance{NumGPUs: cl.Size()}
	models := make([]*model.Model, len(specs))
	for i, s := range specs {
		m := model.MustByName(s.Model)
		models[i] = m
		in.Jobs = append(in.Jobs, s.Job)
		tr := make([]float64, cl.Size())
		sy := make([]float64, cl.Size())
		for _, g := range cl.GPUs {
			tr[g.ID] = m.BatchSeconds(g.Type.Speed, 1) * 20
			sy[g.ID] = 0.05
		}
		in.Train = append(in.Train, tr)
		in.Sync = append(in.Sync, sy)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: workload: %w", err)
	}
	plan, err := sched.NewHare().Schedule(in)
	if err != nil {
		return nil, fmt.Errorf("chaos: plan: %w", err)
	}
	if err := core.ValidateSchedule(in, plan); err != nil {
		return nil, fmt.Errorf("chaos: plan: %w", err)
	}
	h := &harness{
		seed: seed, opts: opts, cl: cl, in: in, plan: plan,
		models: models, makespan: plan.Makespan(in),
	}
	// Fault-free reference at a fast clock: the checkpoint-equality
	// invariant compares every chaotic run against these parameters.
	refStore := store.NewMem()
	if _, err := testbed.Run(in, plan, cl, models, testbed.Options{
		TimeScale: 1e-4, Store: refStore,
	}); err != nil {
		return nil, fmt.Errorf("chaos: reference run: %w", err)
	}
	if h.ref, err = loadParams(refStore, len(in.Jobs)); err != nil {
		return nil, fmt.Errorf("chaos: reference params: %w", err)
	}
	return h, nil
}

// run executes one fault plan under the supervisor (which performs the
// plan's coordinator kill/restart cycles) and checks every invariant.
func (h *harness) run(fplan *faults.Plan) Outcome {
	out := Outcome{Seed: h.seed, Spec: fplan.String(), Jobs: len(h.in.Jobs), Tasks: h.in.NumTasks()}
	if err := fplan.Validate(h.in.NumGPUs); err != nil {
		out.Err = fmt.Errorf("chaos: resolved plan: %w", err)
		return out
	}
	viol := func(invariant, format string, args ...any) Outcome {
		out.Violation = &Violation{
			Seed: h.seed, Spec: out.Spec,
			Invariant: invariant, Detail: fmt.Sprintf(format, args...),
		}
		return out
	}

	journal := h.opts.Journal
	if journal == nil {
		journal = rpcnet.NewMemJournal()
	}
	st := store.NewMem()
	tr, err := newRunTrace(h.opts.TraceDir, h.cl.Size(), h.opts.Recorder)
	if err != nil {
		out.Err = err
		return out
	}

	type runEnd struct {
		out Outcome
	}
	done := make(chan runEnd, 1)
	// last holds the currently serving coordinator for the watchdog's
	// teardown; the supervisor replaces it across recoveries.
	var last struct {
		mu  sync.Mutex
		srv *rpcnet.Server
	}

	go func() {
		srv, bound, wait, err := rpcnet.ServeDistributed("127.0.0.1:0", h.in, h.plan, h.cl, h.models, rpcnet.DistributedOptions{
			TimeScale:         h.opts.timeScale(),
			Store:             st,
			Faults:            fplan,
			Journal:           journal,
			SnapshotEvery:     soakSnapEvery,
			HeartbeatInterval: soakHeartbeat,
			LeaseTimeout:      soakLease,
			Recorder:          tr.coordRec(h.opts.Recorder),
			Metrics:           h.opts.Metrics,
		})
		if err != nil {
			out.Err = fmt.Errorf("chaos: serve: %w", err)
			done <- runEnd{out}
			return
		}
		last.mu.Lock()
		last.srv = srv
		last.mu.Unlock()

		execErrs := make([]error, h.cl.Size())
		var wg sync.WaitGroup
		for g := 0; g < h.cl.Size(); g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				execErrs[g] = rpcnet.RunExecutorOpts(bound, g, rpcnet.ExecutorOptions{
					Chaos:         fplan.NetModel(),
					ChaosSeed:     fplan.NetSeed(),
					MaxReconnects: soakReconnects,
					Recorder:      tr.execRec(g, h.opts.Recorder),
					Metrics:       h.opts.Metrics,
				})
			}(g)
		}

		downs := fplan.NetModel().SortedCoordDowns()
		start := time.Now()
		var downtime time.Duration
		kills := 0
		var res *rpcnet.DistributedResult
		for {
			// Arm the next planned coordinator kill. The deadline maps
			// the outage's simulated anchor to wall time, shifted by the
			// downtime already served (the shared clock re-anchors across
			// recoveries, so earlier outages delay later sim instants).
			var killer *time.Timer
			if kills < len(downs) {
				at := start.
					Add(time.Duration(downs[kills].At * h.opts.timeScale() * float64(time.Second))).
					Add(downtime)
				d := time.Until(at)
				if d < 0 {
					d = 0
				}
				victim := srv
				killer = time.AfterFunc(d, func() { _ = victim.Kill() })
			}
			r, err := wait()
			if killer != nil {
				killer.Stop()
			}
			if err == nil {
				res = r
				break
			}
			if errors.Is(err, rpcnet.ErrCoordinatorDown) && kills < len(downs) {
				// Planned kill: serve the outage, then recover from the
				// journal on the same address so executors find it.
				h.opts.logf("seed %d: coordinator killed at outage %d/%d, down %v", h.seed, kills+1, len(downs), downs[kills].Dur)
				tr.onKill()
				time.Sleep(downs[kills].Dur)
				downtime += downs[kills].Dur
				kills++
				srv, _, wait, err = rpcnet.RecoverDistributed(bound, journal, rpcnet.RecoverOptions{
					Store:          st,
					ReconnectGrace: soakGrace,
					Recorder:       tr.coordRec(h.opts.Recorder),
					Metrics:        h.opts.Metrics,
				})
				if err != nil {
					done <- runEnd{viol("durability", "recovery %d from WAL failed: %v", kills, err)}
					return
				}
				last.mu.Lock()
				last.srv = srv
				last.mu.Unlock()
				continue
			}
			done <- runEnd{viol("run-error", "distributed run failed: %v", err)}
			return
		}
		wg.Wait()
		if kills < len(downs) {
			h.opts.logf("seed %d: run completed before %d of %d planned outages", h.seed, len(downs)-kills, len(downs))
		}
		out.Kills = kills
		out.Makespan = res.Makespan
		done <- runEnd{h.check(out, res, st, execErrs, fplan, kills, downtime)}
	}()

	var final Outcome
	select {
	case end := <-done:
		final = end.out
	case <-time.After(h.opts.watchdog()):
		last.mu.Lock()
		if last.srv != nil {
			_ = last.srv.Kill()
		}
		last.mu.Unlock()
		final = viol("liveness", "run exceeded the %v watchdog: lost or orphaned tasks", h.opts.watchdog())
	}
	if err := tr.finish(final.Violation != nil); err != nil {
		h.opts.logf("seed %d: %v", h.seed, err)
	}
	return final
}

// check verifies every invariant of a completed run.
func (h *harness) check(out Outcome, res *rpcnet.DistributedResult, st store.Store, execErrs []error, fplan *faults.Plan, kills int, downtime time.Duration) Outcome {
	viol := func(invariant, format string, args ...any) Outcome {
		out.Violation = &Violation{
			Seed: h.seed, Spec: out.Spec,
			Invariant: invariant, Detail: fmt.Sprintf(format, args...),
		}
		return out
	}

	// Exactly-once: every planned task traced once, none twice, none
	// lost — duplicate gradient application would show up here.
	seen := make(map[core.TaskRef]bool, len(res.Trace.Records))
	for _, r := range res.Trace.Records {
		if seen[r.Task] {
			return viol("exactly-once", "task %+v executed twice", r.Task)
		}
		seen[r.Task] = true
	}
	if len(seen) != h.in.NumTasks() {
		return viol("exactly-once", "%d distinct tasks executed, want %d", len(seen), h.in.NumTasks())
	}

	// Fencing: no GPU fenced unless its failure was planned. (The
	// converse is timing-dependent — a crash scheduled after the GPU's
	// last report never manifests — so it is not an invariant.)
	planned := make(map[int]bool, len(fplan.SortedFailures()))
	for _, f := range fplan.SortedFailures() {
		planned[f.GPU] = true
	}
	for _, g := range res.FailedGPUs {
		if !planned[g] {
			return viol("no-false-fencing", "GPU %d fenced without a planned failure (fenced %v)", g, res.FailedGPUs)
		}
	}

	// Fence log: monotone sim times, one entry per GPU, and detection
	// latency bounded by lease + monitor tick + reconnect grace +
	// total coordinator downtime (a crash can only go undetected while
	// the monitor is dead or in post-recovery grace).
	boundMs := float64((soakLease + soakHeartbeat + soakGrace + downtime + 1500*time.Millisecond) / time.Millisecond)
	fencedBefore := make(map[int]bool, len(res.FenceLog))
	lastSim := math.Inf(-1)
	for _, f := range res.FenceLog {
		if fencedBefore[f.GPU] {
			return viol("fence-monotonic", "GPU %d fenced twice", f.GPU)
		}
		fencedBefore[f.GPU] = true
		if f.SimTime < lastSim {
			return viol("fence-monotonic", "fence log sim times regress: %g after %g", f.SimTime, lastSim)
		}
		lastSim = f.SimTime
		if f.DetectMillis > boundMs {
			return viol("lease-detection-bound", "GPU %d detected after %.0fms, bound %.0fms", f.GPU, f.DetectMillis, boundMs)
		}
	}
	if len(res.FenceLog) != len(res.FailedGPUs) {
		return viol("fence-monotonic", "%d fence log entries for %d fenced GPUs", len(res.FenceLog), len(res.FailedGPUs))
	}

	// Epoch accounting: each planned kill produced exactly one
	// recovery, and the final incarnation reflects the lineage.
	if res.Recoveries != kills {
		return viol("epoch", "%d recoveries recorded for %d kills", res.Recoveries, kills)
	}
	if res.Epoch != uint64(1+kills) {
		return viol("epoch", "final epoch %d, want %d after %d kills", res.Epoch, 1+kills, kills)
	}

	// Executors of healthy GPUs must exit cleanly; only a GPU with a
	// planned failure may abort (its crash or fence is the plan).
	for g, err := range execErrs {
		if err != nil && !planned[g] {
			return viol("executor-exit", "executor %d exited with %v without a planned failure", g, err)
		}
	}

	// Completions sane.
	for j, c := range res.JobCompletion {
		if c <= 0 || math.IsNaN(c) {
			return viol("completion", "job %d completion %g", j, c)
		}
	}

	// Checkpoint equality: the chaotic run's final parameters match the
	// fault-free reference to paramTol — drops, duplicate pushes,
	// migrations and WAL replays must not change the math.
	params, err := loadParams(st, len(h.in.Jobs))
	if err != nil {
		return viol("checkpoint-equality", "%v", err)
	}
	if d := maxParamDiff(h.ref, params); d > paramTol {
		return viol("checkpoint-equality", "final params diverge from fault-free run by %g (tol %g)", d, paramTol)
	}
	return out
}

// loadParams loads every job's latest checkpoint from a store.
func loadParams(st store.Store, jobs int) ([][]float64, error) {
	out := make([][]float64, jobs)
	for j := 0; j < jobs; j++ {
		data, err := st.Load(store.LatestKey(j))
		if err != nil {
			return nil, fmt.Errorf("job %d checkpoint: %w", j, err)
		}
		if out[j], err = store.DecodeParams(data); err != nil {
			return nil, fmt.Errorf("job %d decode: %w", j, err)
		}
	}
	return out, nil
}

func maxParamDiff(a, b [][]float64) float64 {
	var worst float64
	for j := range a {
		if len(a[j]) != len(b[j]) {
			return math.Inf(1)
		}
		for i := range a[j] {
			if d := math.Abs(a[j][i] - b[j][i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
