package chaos

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hare/internal/obs/dtrace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestMergeDeterminismUnderTimingChaos is the merge-determinism
// contract end to end: the same seed soaked twice under timing-only
// network chaos (reordering plus seeded delays) must produce
// byte-identical canonical control-plane timelines. The physical
// interleavings differ run to run — wall-clock scheduling under
// injected delays is not reproducible — but the logical outcome
// (which GPU ran each task, fences, recoveries, completions) is fully
// determined by the plan and the fault plan. A golden file pins the
// timeline so a behavior change cannot hide behind "both runs changed
// the same way".
func TestMergeDeterminismUnderTimingChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soaks the distributed control plane twice")
	}
	const (
		seed = 11
		spec = "netreorder=0.10,netdelay=1ms~3ms,netseed=11"
	)
	canonical := func(dir string) string {
		t.Helper()
		out := RunSpec(seed, spec, Options{TraceDir: dir})
		if out.Err != nil {
			t.Fatalf("soak: %v", out.Err)
		}
		if out.Violation != nil {
			t.Fatalf("unexpected violation: %v", out.Violation)
		}
		streams, err := dtrace.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		return dtrace.Canonical(streams)
	}
	a := canonical(filepath.Join(t.TempDir(), "run-a"))
	b := canonical(filepath.Join(t.TempDir(), "run-b"))
	if a != b {
		t.Fatalf("canonical timelines differ across replays of seed %d:\n--- run A ---\n%s--- run B ---\n%s", seed, a, b)
	}

	goldenPath := filepath.Join("testdata", "canonical_seed11.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(a), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to capture)", err)
	}
	if a != string(want) {
		t.Fatalf("canonical timeline drifted from golden (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", a, want)
	}
}
