package chaos

import (
	"reflect"
	"testing"
)

func TestScenarioDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := GenerateScenario(seed), GenerateScenario(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: scenario not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if a.Jobs < 4 || a.Jobs > 6 {
			t.Errorf("seed %d: %d jobs outside [4, 6]", seed, a.Jobs)
		}
		if len(a.Failures) > 1 {
			t.Errorf("seed %d: %d failures, want at most 1 (survivors needed)", seed, len(a.Failures))
		}
		for _, p := range a.Partitions {
			if p.Dur >= soakLease {
				t.Errorf("seed %d: partition %v not shorter than the %v lease", seed, p.Dur, soakLease)
			}
		}
	}
}

func TestScenarioResolve(t *testing.T) {
	sc := GenerateScenario(7)
	plan := sc.Resolve(1000)
	if err := plan.Validate(fleetSize); err != nil {
		t.Fatalf("resolved plan invalid: %v", err)
	}
	spec := plan.String()
	if spec == "" {
		t.Fatal("resolved plan renders empty")
	}
	// The printed spec must round-trip through the -fault-spec grammar.
	out := RunSpec(7, spec, Options{Jobs: 0})
	_ = out // compile-time shape check only; executed below in TestSoakSeeds
}

// TestSoakSeeds is the in-repo slice of the CI chaos matrix: a few
// deterministic seeds soaked end-to-end, every invariant checked.
func TestSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs real kill/restart cycles")
	}
	for _, seed := range []int64{1, 2} {
		out := Run(seed, Options{Logf: t.Logf})
		if out.Err != nil {
			t.Fatalf("seed %d: %v", seed, out.Err)
		}
		if out.Violation != nil {
			t.Fatalf("seed %d: %v", seed, out.Violation)
		}
		t.Logf("seed %d clean: %d jobs, %d tasks, %d kills, spec %q", seed, out.Jobs, out.Tasks, out.Kills, out.Spec)
	}
}

func TestMinimizeCleanSpecNotReproduced(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the workload twice")
	}
	// A benign spec violates nothing, so the minimizer must report
	// non-reproduction and hand the spec back unchanged.
	spec := "netdrop=0.01,netseed=3"
	min, runs, reproduced, err := Minimize(3, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reproduced {
		t.Fatalf("benign spec %q reported as violating", spec)
	}
	if min != spec {
		t.Errorf("non-reproduced spec rewritten to %q", min)
	}
	if runs != 2 {
		t.Errorf("confirmation took %d runs, want 2", runs)
	}
}

func TestRemovalsEnumerate(t *testing.T) {
	sc := GenerateScenario(9)
	// Force every ingredient on so the enumeration covers all clauses.
	sc.Drop, sc.Dup, sc.Reorder = 0.01, 0.01, 0.01
	sc.DelayMax = soakHeartbeat
	if len(sc.Partitions) == 0 {
		sc.Partitions = append(sc.Partitions, PartitionSketch{GPU: 1, Frac: 0.5, Dur: soakLease / 8})
	}
	if len(sc.CoordDowns) == 0 {
		sc.CoordDowns = append(sc.CoordDowns, DownSketch{Frac: 0.5, Dur: soakLease / 4})
	}
	if len(sc.Failures) == 0 {
		sc.Failures = append(sc.Failures, FailureSketch{GPU: 2, Frac: 0.4, Crash: true})
	}
	plan := sc.Resolve(500)
	cands := removals(plan)
	want := 4 + len(plan.Net.Partitions) + len(plan.Net.CoordDowns) + len(plan.Failures)
	if len(cands) != want {
		t.Fatalf("%d removal candidates, want %d", len(cands), want)
	}
	for _, c := range cands {
		if c.plan == plan {
			t.Fatalf("removal %q aliases the original plan", c.what)
		}
		if err := c.plan.Validate(fleetSize); err != nil {
			t.Errorf("removal %q produced invalid plan: %v", c.what, err)
		}
	}
	// Removing a clause must never grow the spec.
	orig := len(plan.String())
	for _, c := range cands {
		if len(c.plan.String()) > orig {
			t.Errorf("removal %q grew the spec: %q", c.what, c.plan.String())
		}
	}
}
