// Package chaos is the invariant-checking soak harness of the
// distributed control plane. Each seed deterministically generates a
// fault scenario — network drops, duplicates, reordering, delays,
// executor↔coordinator partitions, coordinator kill/restart cycles and
// executor crashes — runs a real workload through the rpcnet
// coordinator under that schedule, and checks the safety properties
// the crash-safe design promises: every gradient applied exactly once,
// no GPU fenced that was not supposed to fail, fencing monotone and
// bounded, and final checkpoints equal to a fault-free run of the same
// plan. A violation carries the failing seed and a -fault-spec string
// that reproduces it; Minimize shrinks that spec by greedy clause
// removal so the repro is as small as the bug allows.
package chaos

import (
	"sort"
	"time"

	"hare/internal/faults"
	"hare/internal/stats"
)

// Fleet shape of every soak run: two fast V100s and one slow T4 on one
// host — the smallest fleet that exercises heterogeneity, migration
// (two survivors after one failure) and cross-GPU gradient merges.
const fleetSize = 3

// PartitionSketch is a partition window with its start expressed as a
// fraction of the planned makespan (resolved once the plan is known).
type PartitionSketch struct {
	GPU  int
	Frac float64
	Dur  time.Duration
}

// DownSketch is a coordinator kill/restart window, start as a makespan
// fraction, downtime in wall time.
type DownSketch struct {
	Frac float64
	Dur  time.Duration
}

// FailureSketch is a planned GPU failure (executor crash or device
// fault) at a makespan fraction.
type FailureSketch struct {
	GPU   int
	Frac  float64
	Crash bool
}

// Scenario is one seed's fault schedule before resolution against a
// concrete plan. All times are makespan fractions so the same scenario
// scales to any workload.
type Scenario struct {
	Seed int64
	// Jobs is the scenario's workload size.
	Jobs int

	Drop, Dup, Reorder float64
	DelayMin, DelayMax time.Duration
	Partitions         []PartitionSketch
	CoordDowns         []DownSketch
	Failures           []FailureSketch
}

// GenerateScenario derives seed's fault schedule. The ranges are tuned
// against the harness's detection parameters (5ms heartbeats, 400ms
// lease, 2s reconnect grace): partitions stay well under the lease so
// a partitioned-but-alive executor is never fenced, coordinator
// downtime stays within what the executors' reconnect budget rides
// out, and at most one GPU fails so migration always has survivors.
func GenerateScenario(seed int64) *Scenario {
	rng := stats.New(seed)
	s := &Scenario{Seed: seed, Jobs: 4 + rng.Intn(3)}
	s.Drop = rng.Uniform(0, 0.05)
	s.Dup = rng.Uniform(0, 0.06)
	s.Reorder = rng.Uniform(0, 0.10)
	if rng.Float64() < 0.5 {
		s.DelayMax = time.Duration(rng.Uniform(0.2, 2.0) * float64(time.Millisecond))
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Partitions = append(s.Partitions, PartitionSketch{
			GPU:  rng.Intn(fleetSize),
			Frac: rng.Uniform(0.10, 0.80),
			Dur:  time.Duration(rng.Uniform(30, 120)) * time.Millisecond,
		})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.CoordDowns = append(s.CoordDowns, DownSketch{
			Frac: rng.Uniform(0.15, 0.75),
			Dur:  time.Duration(rng.Uniform(80, 220)) * time.Millisecond,
		})
	}
	sort.Slice(s.CoordDowns, func(i, j int) bool { return s.CoordDowns[i].Frac < s.CoordDowns[j].Frac })
	// Keep kill windows apart so each recovery completes (executors
	// re-handshaken, fresh snapshot) before the next kill arms.
	for i := 1; i < len(s.CoordDowns); i++ {
		if s.CoordDowns[i].Frac-s.CoordDowns[i-1].Frac < 0.15 {
			s.CoordDowns[i].Frac = s.CoordDowns[i-1].Frac + 0.15
		}
	}
	if rng.Float64() < 0.4 {
		s.Failures = append(s.Failures, FailureSketch{
			GPU:   rng.Intn(fleetSize),
			Frac:  rng.Uniform(0.20, 0.60),
			Crash: rng.Float64() < 0.7,
		})
	}
	return s
}

// Resolve turns the scenario into a concrete fault plan against a
// planned makespan (simulated seconds). The plan's String() is the
// run's reproduction spec.
func (s *Scenario) Resolve(makespan float64) *faults.Plan {
	p := &faults.Plan{}
	for _, f := range s.Failures {
		p.Failures = append(p.Failures, faults.GPUFailure{
			GPU: f.GPU, Time: f.Frac * makespan, Crash: f.Crash,
		})
	}
	net := &faults.NetChaos{
		Drop: s.Drop, Dup: s.Dup, Reorder: s.Reorder,
		DelayMin: s.DelayMin, DelayMax: s.DelayMax,
		Seed: s.Seed,
	}
	for _, w := range s.Partitions {
		net.Partitions = append(net.Partitions, faults.Partition{
			GPU: w.GPU, At: w.Frac * makespan, Dur: w.Dur,
		})
	}
	for _, d := range s.CoordDowns {
		net.CoordDowns = append(net.CoordDowns, faults.CoordDown{
			At: d.Frac * makespan, Dur: d.Dur,
		})
	}
	if !net.Empty() || net.Seed != 0 {
		p.Net = net
	}
	return p
}
