package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestGoogleRoundTrip(t *testing.T) {
	arr := Arrivals(40, 2000, 5)
	var buf bytes.Buffer
	if err := WriteGoogleJobEvents(&buf, arr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGoogleJobEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(arr) {
		t.Fatalf("got %d arrivals, want %d", len(got), len(arr))
	}
	for i := range arr {
		// µs quantization loses < 1e-6 s.
		if math.Abs(got[i]-arr[i]) > 2e-6 {
			t.Errorf("arrival %d: %g != %g", i, got[i], arr[i])
		}
	}
}

func TestGoogleReadSkipsNonSubmit(t *testing.T) {
	csv := strings.Join([]string{
		"3000000,,1,0,u,2,a,la", // SUBMIT at 3s
		"4000000,,1,1,u,2,a,la", // SCHEDULE — skipped
		"1000000,,2,0,u,2,b,lb", // SUBMIT at 1s (out of order)
		"9000000,,1,4,u,2,a,la", // FINISH — skipped
		"6500000,,3,0,u,2,c,lc", // SUBMIT at 6.5s
	}, "\n")
	got, err := ReadGoogleJobEvents(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 5.5} // shifted to start at 0
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("arrival %d = %g, want %g", i, got[i], want[i])
		}
	}
	if !sort.Float64sAreSorted(got) {
		t.Error("arrivals not sorted")
	}
}

func TestGoogleReadErrors(t *testing.T) {
	cases := []string{
		"1,2",                // too few fields
		"x,,1,0",             // bad timestamp
		"1,,1,z",             // bad event type
		"-5,,1,0",            // negative timestamp
		"1000,,1,1,u,2,a,la", // no SUBMIT events at all
	}
	for i, c := range cases {
		if _, err := ReadGoogleJobEvents(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestLoadGoogleArrivalsFileAndRescale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job_events.csv")
	if err := SaveGoogleArrivals(path, []float64{0, 10, 40, 100}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGoogleArrivals(path, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	if math.Abs(got[3]-500) > 1e-6 || math.Abs(got[1]-50) > 1e-6 {
		t.Errorf("rescaled arrivals %v", got)
	}
	// Truncation.
	two, err := LoadGoogleArrivals(path, 2, 0)
	if err != nil || len(two) != 2 {
		t.Errorf("truncated %v %v", two, err)
	}
	if _, err := LoadGoogleArrivals(filepath.Join(t.TempDir(), "no.csv"), 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}
