// Package trace provides (a) synthetic job-arrival generation with the
// bursty character of the Google cluster trace the paper replays, and
// (b) recording and replaying of per-task execution traces, which is
// how the testbed's measured timings feed the trace-driven simulator.
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"hare/internal/core"
	"hare/internal/stats"
)

// Arrivals synthesizes n job arrival times over roughly the given
// horizon (seconds). Inter-arrival gaps are log-uniform (heavy-tailed,
// bursty) as in the Google cluster trace: many jobs arrive in tight
// clumps separated by long quiet gaps. The result is sorted ascending
// and starts at 0.
func Arrivals(n int, horizon float64, seed int64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("trace: need positive job count, got %d", n))
	}
	if n == 1 || horizon <= 0 {
		return make([]float64, n)
	}
	rng := stats.New(seed)
	gaps := make([]float64, n-1)
	var total float64
	// Gap spread of three orders of magnitude ⇒ strong burstiness.
	for i := range gaps {
		gaps[i] = rng.LogUniform(1, 1000)
		total += gaps[i]
	}
	// Normalize so the last arrival lands at the horizon.
	out := make([]float64, n)
	acc := 0.0
	for i := 1; i < n; i++ {
		acc += gaps[i-1] / total * horizon
		out[i] = acc
	}
	return out
}

// TaskRecord is one executed task: what ran where, and the realized
// timings. Records are produced by both the simulator and the testbed
// so their outputs are directly comparable.
type TaskRecord struct {
	Task   core.TaskRef `json:"task"`
	GPU    int          `json:"gpu"`
	Start  float64      `json:"start"`
	Train  float64      `json:"train"`  // realized T^c
	Sync   float64      `json:"sync"`   // realized T^s
	Switch float64      `json:"switch"` // switching overhead paid before Start
}

// End returns the task's completion time (start + train + sync).
func (r TaskRecord) End() float64 { return r.Start + r.Train + r.Sync }

// Trace is an ordered set of task records from one run.
type Trace struct {
	Records []TaskRecord `json:"records"`
}

// Add appends a record.
func (t *Trace) Add(r TaskRecord) { t.Records = append(t.Records, r) }

// Sorted returns the records ordered by start time (ties by task
// identity) without mutating the receiver.
func (t *Trace) Sorted() []TaskRecord {
	out := append([]TaskRecord(nil), t.Records...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		a, b := out[i].Task, out[j].Task
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Index < b.Index
	})
	return out
}

// JobCompletions derives per-job completion times from the trace.
func (t *Trace) JobCompletions() map[core.JobID]float64 {
	out := make(map[core.JobID]float64)
	for _, r := range t.Records {
		if r.End() > out[r.Task.Job] {
			out[r.Task.Job] = r.End()
		}
	}
	return out
}

// MeanTimes averages the realized train and sync times per job — the
// replay path: a testbed trace is reduced to per-job means, which
// parameterize a simulator instance.
func (t *Trace) MeanTimes() map[core.JobID]struct{ Train, Sync float64 } {
	sums := make(map[core.JobID]struct {
		train, sync float64
		n           int
	})
	for _, r := range t.Records {
		s := sums[r.Task.Job]
		s.train += r.Train
		s.sync += r.Sync
		s.n++
		sums[r.Task.Job] = s
	}
	out := make(map[core.JobID]struct{ Train, Sync float64 }, len(sums))
	for j, s := range sums {
		out[j] = struct{ Train, Sync float64 }{Train: s.train / float64(s.n), Sync: s.sync / float64(s.n)}
	}
	return out
}

// Save writes the trace to path as JSON.
func (t *Trace) Save(path string) error {
	data, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return fmt.Errorf("trace: marshal: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a trace written by Save.
func Load(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	return &t, nil
}
