package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// Support for the Google cluster-data trace format the paper replays
// ("Google Cluster Traces", github.com/google/cluster-data): the
// job_events table is a headerless CSV whose first eight columns are
//
//	timestamp(µs), missing_info, job_id, event_type,
//	user, scheduling_class, job_name, logical_job_name
//
// Event type 0 is SUBMIT. ReadGoogleJobEvents extracts submission
// times for workload arrivals; WriteGoogleJobEvents emits synthetic
// arrivals in the same format so generated workloads round-trip
// through tooling that expects real trace files.

// googleEventSubmit is the SUBMIT event type code in the trace.
const googleEventSubmit = 0

// ReadGoogleJobEvents parses job_events CSV rows from r and returns
// the SUBMIT timestamps as seconds, sorted ascending and shifted so
// the first arrival is 0. Rows with other event types are skipped;
// malformed rows are an error.
func ReadGoogleJobEvents(r io.Reader) ([]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // the real trace has trailing optional fields
	var micros []int64
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: job_events line %d: %w", line, err)
		}
		if len(rec) < 4 {
			return nil, fmt.Errorf("trace: job_events line %d has %d fields, need ≥4", line, len(rec))
		}
		et, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("trace: job_events line %d: bad event type %q", line, rec[3])
		}
		if et != googleEventSubmit {
			continue
		}
		ts, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: job_events line %d: bad timestamp %q", line, rec[0])
		}
		if ts < 0 {
			return nil, fmt.Errorf("trace: job_events line %d: negative timestamp %d", line, ts)
		}
		micros = append(micros, ts)
	}
	if len(micros) == 0 {
		return nil, fmt.Errorf("trace: no SUBMIT events found")
	}
	sort.Slice(micros, func(i, j int) bool { return micros[i] < micros[j] })
	out := make([]float64, len(micros))
	base := micros[0]
	for i, m := range micros {
		out[i] = float64(m-base) / 1e6
	}
	return out, nil
}

// WriteGoogleJobEvents emits the arrivals (seconds) as SUBMIT rows in
// the job_events format, with synthetic job IDs and names.
func WriteGoogleJobEvents(w io.Writer, arrivals []float64) error {
	cw := csv.NewWriter(w)
	for i, a := range arrivals {
		if a < 0 {
			return fmt.Errorf("trace: negative arrival %g at index %d", a, i)
		}
		rec := []string{
			strconv.FormatInt(int64(a*1e6), 10), // timestamp µs
			"",                                  // missing_info
			strconv.Itoa(100000 + i),            // job_id
			strconv.Itoa(googleEventSubmit),     // event_type
			"hare",                              // user
			"2",                                 // scheduling_class
			fmt.Sprintf("job-%d", i),            // job_name
			fmt.Sprintf("logical-%d", i),        // logical_job_name
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write job_events: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadGoogleArrivals reads a job_events CSV file and returns up to n
// arrival times (all when n ≤ 0), rescaled to the given horizon in
// seconds (no rescaling when horizon ≤ 0).
func LoadGoogleArrivals(path string, n int, horizon float64) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer f.Close()
	arr, err := ReadGoogleJobEvents(f)
	if err != nil {
		return nil, err
	}
	if n > 0 && n < len(arr) {
		arr = arr[:n]
	}
	if horizon > 0 && len(arr) > 1 && arr[len(arr)-1] > 0 {
		scale := horizon / arr[len(arr)-1]
		for i := range arr {
			arr[i] *= scale
		}
	}
	return arr, nil
}

// SaveGoogleArrivals writes arrivals to path in job_events format.
func SaveGoogleArrivals(path string, arrivals []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer f.Close()
	return WriteGoogleJobEvents(f, arrivals)
}
