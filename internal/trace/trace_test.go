package trace

import (
	"math"
	"path/filepath"
	"sort"
	"testing"

	"hare/internal/core"
)

func TestArrivalsSortedAndSpanHorizon(t *testing.T) {
	arr := Arrivals(50, 1000, 3)
	if len(arr) != 50 {
		t.Fatalf("%d arrivals", len(arr))
	}
	if !sort.Float64sAreSorted(arr) {
		t.Error("arrivals not sorted")
	}
	if arr[0] != 0 {
		t.Errorf("first arrival %g, want 0", arr[0])
	}
	if math.Abs(arr[len(arr)-1]-1000) > 1e-6 {
		t.Errorf("last arrival %g, want 1000", arr[len(arr)-1])
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	a := Arrivals(20, 500, 7)
	b := Arrivals(20, 500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestArrivalsBursty(t *testing.T) {
	arr := Arrivals(200, 10000, 11)
	gaps := make([]float64, len(arr)-1)
	for i := 1; i < len(arr); i++ {
		gaps[i-1] = arr[i] - arr[i-1]
	}
	sort.Float64s(gaps)
	// Heavy-tailed: the largest gap dwarfs the median.
	median := gaps[len(gaps)/2]
	if gaps[len(gaps)-1] < 10*median {
		t.Errorf("max gap %.1f not ≫ median %.1f — arrivals not bursty", gaps[len(gaps)-1], median)
	}
}

func TestArrivalsEdgeCases(t *testing.T) {
	if got := Arrivals(1, 100, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("single arrival %v", got)
	}
	if got := Arrivals(3, 0, 1); got[2] != 0 {
		t.Errorf("zero horizon arrivals %v", got)
	}
}

func sampleTrace() *Trace {
	tr := &Trace{}
	tr.Add(TaskRecord{Task: core.TaskRef{Job: 0, Round: 1}, GPU: 0, Start: 5, Train: 2, Sync: 1})
	tr.Add(TaskRecord{Task: core.TaskRef{Job: 0, Round: 0}, GPU: 1, Start: 0, Train: 3, Sync: 1})
	tr.Add(TaskRecord{Task: core.TaskRef{Job: 1, Round: 0}, GPU: 0, Start: 1, Train: 4, Sync: 0.5})
	return tr
}

func TestSortedByStart(t *testing.T) {
	s := sampleTrace().Sorted()
	for i := 1; i < len(s); i++ {
		if s[i].Start < s[i-1].Start {
			t.Fatal("not sorted by start")
		}
	}
}

func TestJobCompletions(t *testing.T) {
	comps := sampleTrace().JobCompletions()
	if comps[0] != 8 { // round 1 task: 5+2+1
		t.Errorf("job 0 completion %g, want 8", comps[0])
	}
	if comps[1] != 5.5 {
		t.Errorf("job 1 completion %g, want 5.5", comps[1])
	}
}

func TestMeanTimes(t *testing.T) {
	mt := sampleTrace().MeanTimes()
	if m := mt[0]; math.Abs(m.Train-2.5) > 1e-9 || math.Abs(m.Sync-1) > 1e-9 {
		t.Errorf("job 0 means %+v", m)
	}
	if m := mt[1]; m.Train != 4 || m.Sync != 0.5 {
		t.Errorf("job 1 means %+v", m)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr := sampleTrace()
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("loaded %d records, want %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
