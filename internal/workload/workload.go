// Package workload generates DML job populations for experiments: the
// Table 2 model mix (25 % CV, 25 % NLP, 25 % Speech, 25 % Rec by
// default), per-job round counts, synchronization scales, weights, and
// arrival times. All generation is deterministic in the seed.
package workload

import (
	"fmt"
	"sort"

	"hare/internal/core"
	"hare/internal/model"
	"hare/internal/stats"
)

// Spec is one generated job: core metadata plus the model/batch
// parameters the profiler needs. It implements profile.JobSpec.
type Spec struct {
	Job        *core.Job
	Model      string
	Batch      float64 // batch-size multiplier vs. the model default (B/B0)
	Sync       int     // |D_r|
	ClassOfJob model.Class
}

// ModelName implements profile.JobSpec.
func (s *Spec) ModelName() string { return s.Model }

// BatchScale implements profile.JobSpec.
func (s *Spec) BatchScale() float64 { return s.Batch }

// SyncScale implements profile.JobSpec.
func (s *Spec) SyncScale() int { return s.Sync }

// Mix is the probability weight of each workload class. Weights need
// not sum to 1; they are normalized at sampling time.
type Mix map[model.Class]float64

// DefaultMix is Table 2's default: every class at 25 %.
func DefaultMix() Mix {
	return Mix{model.CV: 0.25, model.NLP: 0.25, model.Speech: 0.25, model.Rec: 0.25}
}

// Boost returns a copy of the mix with class c's weight set to frac
// and the other classes sharing the remainder in their original
// proportions — the knob turned by the paper's Fig. 17 sweep.
func (m Mix) Boost(c model.Class, frac float64) Mix {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("workload: boost fraction %g outside [0,1]", frac))
	}
	// Iterate classes in sorted order: summing float weights in map
	// order would make the normalized mix differ in the last ulp
	// between runs.
	classes := make([]model.Class, 0, len(m))
	for cl := range m {
		classes = append(classes, cl)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	var otherTotal float64
	for _, cl := range classes {
		if cl != c {
			otherTotal += m[cl]
		}
	}
	out := make(Mix, len(m))
	for _, cl := range classes {
		if cl == c {
			out[cl] = frac
		} else if otherTotal > 0 {
			out[cl] = m[cl] / otherTotal * (1 - frac)
		}
	}
	return out
}

// Options configures the generator.
type Options struct {
	// NumJobs is the number of jobs to generate.
	NumJobs int
	// Mix is the class mix; DefaultMix when nil.
	Mix Mix
	// Arrivals supplies the n job arrival times, sorted ascending.
	// When nil, all jobs arrive at time 0.
	Arrivals []float64
	// BatchScale multiplies every model's default batch size
	// (Fig. 19's B/B0 knob). Defaults to 1.
	BatchScale float64
	// RoundsScale multiplies every model's base round count; it
	// shrinks workloads for fast tests. Defaults to 1.
	RoundsScale float64
	// MaxSync caps the per-job synchronization scale (e.g. at the
	// cluster size). 0 means no cap.
	MaxSync int
	// Seed drives all sampling.
	Seed int64
}

// Generate produces a deterministic job population. Job IDs are dense
// in arrival order. Per-job randomization: the model is sampled from
// the class mix (uniform within the class), rounds vary ±30 % around
// the model's base, the sync scale varies between 1× and 2× the
// model's base, and weights are uniform on [1, 4] — matching the
// paper's weighted-JCT objective where weights encode job priority.
func Generate(opts Options) []*Spec {
	if opts.NumJobs <= 0 {
		panic(fmt.Sprintf("workload: NumJobs must be positive, got %d", opts.NumJobs))
	}
	mix := opts.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	if opts.BatchScale == 0 {
		opts.BatchScale = 1
	}
	if opts.RoundsScale == 0 {
		opts.RoundsScale = 1
	}
	if opts.Arrivals != nil && len(opts.Arrivals) != opts.NumJobs {
		panic(fmt.Sprintf("workload: %d arrivals for %d jobs", len(opts.Arrivals), opts.NumJobs))
	}

	rng := stats.New(opts.Seed)
	classes := model.Classes()
	weights := make([]float64, len(classes))
	for i, c := range classes {
		weights[i] = mix[c]
	}

	specs := make([]*Spec, opts.NumJobs)
	for i := 0; i < opts.NumJobs; i++ {
		class := classes[rng.WeightedChoice(weights)]
		candidates := model.ByClass(class)
		md := candidates[rng.Intn(len(candidates))]

		rounds := int(float64(md.RoundsBase) * opts.RoundsScale * rng.Uniform(0.7, 1.3))
		if rounds < 1 {
			rounds = 1
		}
		scale := md.ScaleBase + rng.Intn(md.ScaleBase+1)
		if opts.MaxSync > 0 && scale > opts.MaxSync {
			scale = opts.MaxSync
		}
		if scale < 1 {
			scale = 1
		}
		arrival := 0.0
		if opts.Arrivals != nil {
			arrival = opts.Arrivals[i]
		}
		job := &core.Job{
			ID:      core.JobID(i),
			Name:    fmt.Sprintf("job-%d(%s)", i, md.Name),
			Model:   md.Name,
			Weight:  rng.Uniform(1, 4),
			Arrival: arrival,
			Rounds:  rounds,
			Scale:   scale,
		}
		specs[i] = &Spec{
			Job:        job,
			Model:      md.Name,
			Batch:      opts.BatchScale,
			Sync:       scale,
			ClassOfJob: class,
		}
	}
	return specs
}

// TenantSeedStride separates per-tenant seed spaces in
// GenerateTenants. It is a large prime so tenant streams never
// collide for realistic tenant counts or seed offsets.
const TenantSeedStride = 1000003

// GenerateTenants scales a population to many tenants: tenant t
// receives an independent population drawn from base with seed
// base.Seed + t*TenantSeedStride, and job IDs are renumbered to be
// globally dense in (tenant, local order). When base.Arrivals is set,
// every tenant shares the same arrival pattern. This is the
// trace-scale knob behind the million-job replay benchmarks: the
// tenants are mutually independent by construction, so a per-tenant
// schedule decomposes and the simulator can replay tenants in
// parallel.
func GenerateTenants(base Options, tenants int) [][]*Spec {
	if tenants <= 0 {
		panic(fmt.Sprintf("workload: tenants must be positive, got %d", tenants))
	}
	out := make([][]*Spec, tenants)
	for t := 0; t < tenants; t++ {
		opts := base
		opts.Seed = base.Seed + int64(t)*TenantSeedStride
		specs := Generate(opts)
		for i, s := range specs {
			s.Job.ID = core.JobID(t*base.NumJobs + i)
			s.Job.Name = fmt.Sprintf("tenant-%d/%s", t, s.Job.Name)
		}
		out[t] = specs
	}
	return out
}

// Jobs extracts the core.Job slice from specs, in order.
func Jobs(specs []*Spec) []*core.Job {
	out := make([]*core.Job, len(specs))
	for i, s := range specs {
		out[i] = s.Job
	}
	return out
}

// ClassCounts tallies how many jobs of each class were generated.
func ClassCounts(specs []*Spec) map[model.Class]int {
	out := make(map[model.Class]int)
	for _, s := range specs {
		out[s.ClassOfJob]++
	}
	return out
}
