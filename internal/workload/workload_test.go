package workload

import (
	"math"
	"testing"

	"hare/internal/model"
)

func TestGenerateDeterministic(t *testing.T) {
	opts := Options{NumJobs: 30, Seed: 5}
	a := Generate(opts)
	b := Generate(opts)
	for i := range a {
		if a[i].Model != b[i].Model || a[i].Job.Rounds != b[i].Job.Rounds ||
			a[i].Job.Weight != b[i].Job.Weight || a[i].Sync != b[i].Sync {
			t.Fatalf("generation not deterministic at job %d", i)
		}
	}
	c := Generate(Options{NumJobs: 30, Seed: 6})
	same := true
	for i := range a {
		if a[i].Model != c[i].Model || a[i].Job.Rounds != c[i].Job.Rounds {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateStructure(t *testing.T) {
	arr := make([]float64, 20)
	for i := range arr {
		arr[i] = float64(i) * 3
	}
	specs := Generate(Options{NumJobs: 20, Arrivals: arr, MaxSync: 4, Seed: 9})
	for i, s := range specs {
		j := s.Job
		if int(j.ID) != i {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
		if j.Arrival != arr[i] {
			t.Errorf("job %d arrival %g, want %g", i, j.Arrival, arr[i])
		}
		if j.Rounds < 1 || j.Scale < 1 || j.Scale > 4 {
			t.Errorf("job %d rounds=%d scale=%d", i, j.Rounds, j.Scale)
		}
		if j.Weight < 1 || j.Weight > 4 {
			t.Errorf("job %d weight %g outside [1,4]", i, j.Weight)
		}
		if j.Scale != s.Sync {
			t.Errorf("job %d scale %d != spec sync %d", i, j.Scale, s.Sync)
		}
		if _, err := model.ByName(s.Model); err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

func TestDefaultMixRoughlyUniform(t *testing.T) {
	specs := Generate(Options{NumJobs: 4000, Seed: 3})
	counts := ClassCounts(specs)
	for _, c := range model.Classes() {
		frac := float64(counts[c]) / 4000
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("class %s fraction %.3f, want ~0.25", c, frac)
		}
	}
}

func TestMixBoost(t *testing.T) {
	m := DefaultMix().Boost(model.NLP, 0.7)
	if math.Abs(m[model.NLP]-0.7) > 1e-9 {
		t.Errorf("NLP weight %g", m[model.NLP])
	}
	var total float64
	//lint:ordered sum is checked against a 1e-9 tolerance below
	for _, w := range m {
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("boosted mix sums to %g", total)
	}
	// The others keep their relative proportions (all equal here).
	if math.Abs(m[model.CV]-0.1) > 1e-9 {
		t.Errorf("CV weight %g, want 0.1", m[model.CV])
	}
	// Sampling respects the boost.
	specs := Generate(Options{NumJobs: 3000, Mix: m, Seed: 4})
	counts := ClassCounts(specs)
	frac := float64(counts[model.NLP]) / 3000
	if math.Abs(frac-0.7) > 0.03 {
		t.Errorf("boosted NLP fraction %.3f, want ~0.7", frac)
	}
}

func TestBoostPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for fraction > 1")
		}
	}()
	DefaultMix().Boost(model.CV, 1.5)
}

func TestRoundsScale(t *testing.T) {
	big := Generate(Options{NumJobs: 50, Seed: 2, RoundsScale: 1})
	small := Generate(Options{NumJobs: 50, Seed: 2, RoundsScale: 0.1})
	var bigSum, smallSum int
	for i := range big {
		bigSum += big[i].Job.Rounds
		smallSum += small[i].Job.Rounds
	}
	ratio := float64(smallSum) / float64(bigSum)
	if ratio > 0.2 {
		t.Errorf("rounds scale 0.1 only reduced totals to %.2f", ratio)
	}
	for _, s := range small {
		if s.Job.Rounds < 1 {
			t.Error("rounds scaled below 1")
		}
	}
}

func TestBatchScalePropagates(t *testing.T) {
	specs := Generate(Options{NumJobs: 5, Seed: 1, BatchScale: 2})
	for _, s := range specs {
		if s.BatchScale() != 2 {
			t.Errorf("batch scale %g", s.BatchScale())
		}
	}
}

func TestGeneratePanicsOnBadInput(t *testing.T) {
	for _, bad := range []func(){
		func() { Generate(Options{NumJobs: 0}) },
		func() { Generate(Options{NumJobs: 3, Arrivals: []float64{1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			bad()
		}()
	}
}

func TestJobsExtraction(t *testing.T) {
	specs := Generate(Options{NumJobs: 7, Seed: 8})
	jobs := Jobs(specs)
	if len(jobs) != 7 {
		t.Fatalf("%d jobs", len(jobs))
	}
	for i, j := range jobs {
		if j != specs[i].Job {
			t.Error("Jobs() reordered or copied")
		}
	}
}

func TestGenerateTenants(t *testing.T) {
	base := Options{NumJobs: 7, Seed: 11, RoundsScale: 0.2}
	pops := GenerateTenants(base, 3)
	if len(pops) != 3 {
		t.Fatalf("got %d tenants, want 3", len(pops))
	}
	next := 0
	for ti, specs := range pops {
		if len(specs) != base.NumJobs {
			t.Fatalf("tenant %d has %d jobs, want %d", ti, len(specs), base.NumJobs)
		}
		for _, s := range specs {
			if int(s.Job.ID) != next {
				t.Fatalf("tenant %d: job ID %d, want dense %d", ti, s.Job.ID, next)
			}
			next++
		}
	}
	// Tenant t must equal a standalone population at the strided seed
	// (modulo renumbering), and distinct tenants must differ.
	solo := Generate(Options{NumJobs: 7, Seed: 11 + TenantSeedStride, RoundsScale: 0.2})
	for i, s := range pops[1] {
		if s.Model != solo[i].Model || s.Job.Rounds != solo[i].Job.Rounds ||
			s.Job.Weight != solo[i].Job.Weight || s.Sync != solo[i].Sync {
			t.Fatalf("tenant 1 job %d differs from strided-seed population", i)
		}
	}
	same := true
	for i := range pops[0] {
		if pops[0][i].Model != pops[1][i].Model || pops[0][i].Job.Rounds != pops[1][i].Job.Rounds {
			same = false
		}
	}
	if same {
		t.Fatal("tenant populations 0 and 1 are identical; seeds not independent")
	}
}
