package workload

import (
	"encoding/json"
	"fmt"
	"os"

	"hare/internal/core"
	"hare/internal/model"
)

// File-defined workloads: instead of the statistical generator, a
// user can hand the tools an explicit job list as JSON — the shape a
// production submission log exports to. Example:
//
//	[
//	  {"model": "ResNet50", "rounds": 40, "scale": 2, "weight": 2.0,
//	   "arrival": 0, "batch_scale": 1.0, "tag": "vision-train"},
//	  {"model": "Bert_base", "rounds": 80, "scale": 4, "arrival": 120}
//	]

// FileJob is one job entry in a workload file.
type FileJob struct {
	Model      string  `json:"model"`
	Rounds     int     `json:"rounds"`
	Scale      int     `json:"scale"`
	Weight     float64 `json:"weight,omitempty"`      // default 1
	Arrival    float64 `json:"arrival,omitempty"`     // seconds, default 0
	BatchScale float64 `json:"batch_scale,omitempty"` // default 1
	Tag        string  `json:"tag,omitempty"`
}

// ParseSpecs converts file entries into generator specs, validating
// each against the model zoo and the fleet size (0 = unchecked).
func ParseSpecs(entries []FileJob, fleetSize int) ([]*Spec, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("workload: file defines no jobs")
	}
	specs := make([]*Spec, len(entries))
	for i, e := range entries {
		md, err := model.ByName(e.Model)
		if err != nil {
			return nil, fmt.Errorf("workload: job %d: %w", i, err)
		}
		if e.Rounds <= 0 {
			return nil, fmt.Errorf("workload: job %d: rounds %d", i, e.Rounds)
		}
		if e.Scale <= 0 || (fleetSize > 0 && e.Scale > fleetSize) {
			return nil, fmt.Errorf("workload: job %d: scale %d outside [1, %d]", i, e.Scale, fleetSize)
		}
		if e.Arrival < 0 {
			return nil, fmt.Errorf("workload: job %d: negative arrival %g", i, e.Arrival)
		}
		weight := e.Weight
		if weight <= 0 {
			weight = 1
		}
		batch := e.BatchScale
		if batch <= 0 {
			batch = 1
		}
		name := e.Tag
		if name == "" {
			name = fmt.Sprintf("job-%d(%s)", i, md.Name)
		}
		specs[i] = &Spec{
			Job: &core.Job{
				ID: core.JobID(i), Name: name, Model: md.Name,
				Weight: weight, Arrival: e.Arrival,
				Rounds: e.Rounds, Scale: e.Scale,
			},
			Model:      md.Name,
			Batch:      batch,
			Sync:       e.Scale,
			ClassOfJob: md.Class,
		}
	}
	return specs, nil
}

// LoadSpecs reads a JSON workload file (an array of FileJob).
func LoadSpecs(path string, fleetSize int) ([]*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: read %s: %w", path, err)
	}
	var entries []FileJob
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("workload: parse %s: %w", path, err)
	}
	return ParseSpecs(entries, fleetSize)
}

// SaveSpecs writes specs back out as a workload file, so generated
// populations can be inspected, edited and replayed.
func SaveSpecs(path string, specs []*Spec) error {
	entries := make([]FileJob, len(specs))
	for i, s := range specs {
		entries[i] = FileJob{
			Model: s.Model, Rounds: s.Job.Rounds, Scale: s.Job.Scale,
			Weight: s.Job.Weight, Arrival: s.Job.Arrival,
			BatchScale: s.Batch, Tag: s.Job.Name,
		}
	}
	data, err := json.MarshalIndent(entries, "", " ")
	if err != nil {
		return fmt.Errorf("workload: marshal: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
