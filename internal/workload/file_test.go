package workload

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSpecsValid(t *testing.T) {
	specs, err := ParseSpecs([]FileJob{
		{Model: "ResNet50", Rounds: 10, Scale: 2, Weight: 2, Arrival: 5, Tag: "a"},
		{Model: "GraphSAGE", Rounds: 3, Scale: 1},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	if specs[0].Job.Weight != 2 || specs[0].Job.Arrival != 5 || specs[0].Job.Name != "a" {
		t.Errorf("spec 0: %+v", specs[0].Job)
	}
	// Defaults applied.
	if specs[1].Job.Weight != 1 || specs[1].Batch != 1 {
		t.Errorf("spec 1 defaults: weight %g batch %g", specs[1].Job.Weight, specs[1].Batch)
	}
	if specs[1].Job.ID != 1 {
		t.Errorf("IDs not dense: %d", specs[1].Job.ID)
	}
}

func TestParseSpecsErrors(t *testing.T) {
	cases := []struct {
		jobs []FileJob
		want string
	}{
		{nil, "no jobs"},
		{[]FileJob{{Model: "nope", Rounds: 1, Scale: 1}}, "unknown model"},
		{[]FileJob{{Model: "VGG19", Rounds: 0, Scale: 1}}, "rounds"},
		{[]FileJob{{Model: "VGG19", Rounds: 1, Scale: 9}}, "scale"},
		{[]FileJob{{Model: "VGG19", Rounds: 1, Scale: 1, Arrival: -2}}, "arrival"},
	}
	for i, c := range cases {
		_, err := ParseSpecs(c.jobs, 4)
		if err == nil {
			t.Errorf("case %d accepted", i)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q missing %q", i, err, c.want)
		}
	}
}

func TestSpecsFileRoundTrip(t *testing.T) {
	gen := Generate(Options{NumJobs: 12, Seed: 3, MaxSync: 4})
	path := filepath.Join(t.TempDir(), "workload.json")
	if err := SaveSpecs(path, gen); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpecs(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(gen) {
		t.Fatalf("loaded %d, want %d", len(got), len(gen))
	}
	for i := range gen {
		if got[i].Model != gen[i].Model ||
			got[i].Job.Rounds != gen[i].Job.Rounds ||
			got[i].Job.Scale != gen[i].Job.Scale ||
			got[i].Job.Weight != gen[i].Job.Weight ||
			got[i].Job.Arrival != gen[i].Job.Arrival {
			t.Errorf("job %d changed: %+v vs %+v", i, got[i].Job, gen[i].Job)
		}
	}
}

func TestLoadSpecsBadFile(t *testing.T) {
	if _, err := LoadSpecs(filepath.Join(t.TempDir(), "missing.json"), 4); err == nil {
		t.Error("missing file accepted")
	}
}
