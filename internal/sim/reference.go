package sim

import (
	"fmt"
	"math"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/gpumem"
	"hare/internal/model"
	"hare/internal/switching"
)

// RunReference replays the schedule with the original O(tasks·GPUs)
// selection loop: every iteration rescans all GPUs' head tasks and
// recomputes their switching cost from scratch. It is kept as the
// executable specification of the replay semantics — Run's
// incremental engine must produce byte-identical Results and Traces
// (TestRunMatchesReference and TestRunGoldenSeed42 enforce this), and
// BenchmarkSimulatorReplayReference measures what the rewrite buys.
// New behavior goes into the shared replay core (exec), never into
// only one engine.
func RunReference(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options) (*Result, error) {
	if opts.Faults.HasGPUFailures() {
		// Failure cut + re-plan lives in Run's event loop only; the
		// transient-fault and straggler paths are in the shared exec
		// core and replay identically here.
		return nil, fmt.Errorf("sim: RunReference cannot replay permanent GPU failures; use Run")
	}
	stopSetup := opts.Phases.Start("sim_setup")
	r, err := newReplay(in, sch, cl, models, opts)
	if err != nil {
		return nil, err
	}
	stopSetup()
	// Same phase name as Run's loop: the recorder's histogram then
	// directly compares the two engines' replay time.
	stopLoop := opts.Phases.Start("sim_event_loop")
	defer stopLoop()
	for r.pending > 0 {
		// Choose the GPU whose head task can start earliest.
		bestGPU := -1
		var bestStart, bestSwitch float64
		var bestHit bool
		var bestB switching.Breakdown
		for m := range r.gpus {
			g := &r.gpus[m]
			if g.next >= len(g.seq) {
				continue
			}
			t := g.seq[g.next]
			barrier, ok := r.barrierOf(t)
			if !ok {
				continue // blocked on an incomplete round
			}
			var sw float64
			var hit bool
			var b switching.Breakdown
			if r.withSwitching && g.prevJob != t.Job {
				var prev *model.Model
				if g.prevJob >= 0 {
					prev = models[g.prevJob]
				}
				resident := g.mem != nil && g.mem.Resident(gpumem.JobKey(t.Job))
				b = switching.Cost(opts.Scheme, cl.GPUs[m].Type, prev, models[t.Job], resident)
				sw, hit = b.Total(), b.ResidentHit
			}
			start := math.Max(g.free+sw, barrier)
			//lint:allow floateq exact tie arm applies the deterministic GPU-index tie-break
			if bestGPU == -1 || start < bestStart || (start == bestStart && m < bestGPU) {
				bestGPU, bestStart, bestSwitch, bestHit, bestB = m, start, sw, hit, b
			}
		}
		if bestGPU == -1 {
			return nil, fmt.Errorf("sim: deadlock with %d tasks pending (round barrier never satisfied)", r.pending)
		}
		r.exec(bestGPU, bestStart, bestSwitch, bestHit, bestB)
	}
	return r.finish(), nil
}
