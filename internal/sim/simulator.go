package sim

import (
	"fmt"
	"math"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/eventq"
	"hare/internal/faults"
	"hare/internal/gpumem"
	"hare/internal/model"
	"hare/internal/obs"
	"hare/internal/sched"
	"hare/internal/switching"
)

// maxMemoEntries caps the dense switching-cost table. Real fleets have
// a handful of GPU types and the model zoo a handful of architectures,
// so the table is tiny; a pathological instance (thousands of distinct
// model values) falls back to calling switching.Cost directly, which
// is pure and cheap.
const maxMemoEntries = 1 << 20

// Simulator is a reusable replay engine: all run state — executor
// lanes, barrier tables, the candidate heap, waiter lists, the
// switching-cost memo, and the failure-path scratch — lives in
// capacity-reusing arenas, so replay after replay allocates next to
// nothing. A Simulator is not safe for concurrent use; pool one per
// goroutine (the package-level Run does exactly that).
type Simulator struct {
	r      replay
	seqBuf core.SeqBuffer

	// ready holds every GPU whose head task has a final barrier,
	// keyed by its cached feasible start; ties pop in GPU-id order,
	// matching the reference scan's first-best-index selection.
	ready *eventq.IndexedHeap
	cands []candidate

	// Waiter lists, one FIFO per (job, round) barrier slot, stored as
	// intrusive linked lists over GPU ids: waitHead/waitTail index by
	// the flattened round slot (see replay.roundOff), waitNext chains
	// GPUs. A GPU waits on at most one barrier (its head task's), so
	// one next-pointer per GPU suffices. Wake order is push order —
	// identical to the reference engine's append-order refresh.
	waitHead, waitTail, waitNext []int32

	// alive[m] turns false when a planned GPU failure fires; dead GPUs
	// never re-enter the ready pool.
	alive []bool

	// Dense switching-cost memo: switching.Cost depends only on
	// (scheme, GPU type, prev model, next model, residency), so jobs
	// collapse onto their distinct models and GPUs onto their distinct
	// types. Entries are validated against epoch — bumping it
	// invalidates the whole table in O(1) between runs.
	typeScratch  map[cluster.GPUType]int
	typeIdx      []int
	modelScratch map[*model.Model]int
	modelIdx     []int
	memo         []switching.Breakdown
	memoEpoch    []uint32
	epoch        uint32
	nModels      int
	memoOK       bool

	// GPU-failure re-plan scratch: the stranded-task copy that used to
	// be allocated per failure, the pending/survivor collection, and
	// the residual's lookahead rebuild all reuse these.
	strandedBuf []core.TaskRef
	pendingBuf  []core.TaskRef
	aliveBuf    []int
}

// NewSimulator returns an empty Simulator; its arenas grow to the
// first workload's size on the first Run and are reused afterwards.
func NewSimulator() *Simulator {
	return &Simulator{ready: eventq.NewIndexedHeap(0)}
}

// fillNeg returns s with length n and every element -1, reusing
// capacity when possible.
func fillNeg(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = -1
	}
	return s
}

// Run replays the schedule on the reusable engine. The semantics and
// results are byte-identical to RunReference; Options.Parallel is
// ignored (a Simulator is always serial — the package-level Run does
// the sharding).
//
// The returned Result and its slices are owned by the Simulator and
// valid only until the next Run call; use Result.Clone to keep one.
func (s *Simulator) Run(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options) (*Result, error) {
	opts.Parallel = 0
	stopSetup := opts.Phases.Start("sim_setup")
	r := &s.r
	if err := r.init(in, sch, cl, models, opts, &s.seqBuf); err != nil {
		return nil, err
	}
	r.waker = s

	s.memoOK = false
	if r.withSwitching {
		// typeIdx collapses the fleet onto its few distinct GPU types
		// so switching costs memoize across GPUs, not just per GPU;
		// modelIdx does the same for jobs over their models.
		if s.typeScratch == nil {
			s.typeScratch = make(map[cluster.GPUType]int)
		} else {
			clear(s.typeScratch)
		}
		s.typeIdx = growZero(s.typeIdx, in.NumGPUs)
		for m := range s.typeIdx {
			id, ok := s.typeScratch[cl.GPUs[m].Type]
			if !ok {
				id = len(s.typeScratch)
				s.typeScratch[cl.GPUs[m].Type] = id
			}
			s.typeIdx[m] = id
		}
		if s.modelScratch == nil {
			s.modelScratch = make(map[*model.Model]int)
		} else {
			clear(s.modelScratch)
		}
		s.modelIdx = growZero(s.modelIdx, len(in.Jobs))
		for j := range s.modelIdx {
			id, ok := s.modelScratch[models[j]]
			if !ok {
				id = len(s.modelScratch)
				s.modelScratch[models[j]] = id
			}
			s.modelIdx[j] = id
		}
		nTypes, nModels := len(s.typeScratch), len(s.modelScratch)
		if size := nTypes * (nModels + 1) * nModels * 2; size <= maxMemoEntries {
			s.memoOK = true
			s.nModels = nModels
			if cap(s.memo) < size {
				s.memo = make([]switching.Breakdown, size)
				s.memoEpoch = make([]uint32, size)
				s.epoch = 0
			} else {
				s.memo = s.memo[:size]
				s.memoEpoch = s.memoEpoch[:size]
			}
			s.epoch++
			if s.epoch == 0 { // wrapped: stale stamps could alias; wipe once
				clear(s.memoEpoch)
				s.epoch = 1
			}
		}
	}

	s.ready.Reset(in.NumGPUs)
	s.cands = growZero(s.cands, in.NumGPUs)
	s.waitHead = fillNeg(s.waitHead, len(r.remaining))
	s.waitTail = fillNeg(s.waitTail, len(r.remaining))
	s.waitNext = fillNeg(s.waitNext, in.NumGPUs)
	s.alive = growZero(s.alive, in.NumGPUs)
	for m := range s.alive {
		s.alive[m] = true
	}

	failures := opts.Faults.SortedFailures()
	nextFail := 0
	replanner := opts.Replanner
	if replanner == nil && len(failures) > 0 {
		replanner = sched.NewHare()
	}

	for m := range r.gpus {
		s.refresh(m)
	}
	stopSetup()
	stopLoop := opts.Phases.Start("sim_event_loop")
	for r.pending > 0 {
		m, start, ok := s.ready.Min()
		if !ok {
			return nil, fmt.Errorf("sim: deadlock with %d tasks pending (round barrier never satisfied)", r.pending)
		}
		// A planned failure due at or before the next task start fires
		// first: it may strand that very task.
		if nextFail < len(failures) && failures[nextFail].Time <= start {
			f := failures[nextFail]
			nextFail++
			if err := s.failGPU(f, replanner); err != nil {
				return nil, err
			}
			continue
		}
		s.ready.PopMin()
		c := s.cands[m]
		r.exec(m, c.start, c.sw, c.hit, c.b)
		s.refresh(m)
	}
	stopLoop()
	if opts.Metrics != nil {
		ops := s.ready.Ops()
		opts.Metrics.Counter("hare_sim_heap_inserts_total").Add(float64(ops.Inserts))
		opts.Metrics.Counter("hare_sim_heap_updates_total").Add(float64(ops.Updates))
		opts.Metrics.Counter("hare_sim_heap_removes_total").Add(float64(ops.Removes))
		opts.Metrics.Counter("hare_sim_heap_pops_total").Add(float64(ops.Pops))
	}
	return r.finish(), nil
}

// release drops references to caller-owned inputs between pooled
// runs; the arenas stay.
func (s *Simulator) release() { s.r.release() }

// refresh recomputes GPU m's head-task candidate and files it in the
// ready heap, or parks the GPU on the barrier blocking it.
func (s *Simulator) refresh(m int) {
	r := &s.r
	g := &r.gpus[m]
	if !s.alive[m] || g.next >= len(g.seq) {
		return // dead, or sequence exhausted; GPU leaves the pool
	}
	t := g.seq[g.next]
	barrier, ok := r.barrierOf(t)
	if !ok {
		s.park(r.roundOff[t.Job]+t.Round-1, m)
		return
	}
	var c candidate
	if r.withSwitching && g.prevJob != t.Job {
		resident := g.mem != nil && g.mem.Resident(gpumem.JobKey(t.Job))
		var b switching.Breakdown
		if s.memoOK {
			pm := -1
			if g.prevJob >= 0 {
				pm = s.modelIdx[g.prevJob]
			}
			idx := ((s.typeIdx[m]*(s.nModels+1)+pm+1)*s.nModels + s.modelIdx[t.Job]) * 2
			if resident {
				idx++
			}
			if s.memoEpoch[idx] != s.epoch {
				s.memo[idx] = s.costOf(m, g.prevJob, t.Job, resident)
				s.memoEpoch[idx] = s.epoch
			}
			b = s.memo[idx]
		} else {
			b = s.costOf(m, g.prevJob, t.Job, resident)
		}
		c.b = b
		c.sw, c.hit = b.Total(), b.ResidentHit
	}
	c.start = math.Max(g.free+c.sw, barrier)
	s.cands[m] = c
	s.ready.Set(m, c.start)
}

func (s *Simulator) costOf(m int, prevJob, nextJob core.JobID, resident bool) switching.Breakdown {
	r := &s.r
	var prev *model.Model
	if prevJob >= 0 {
		prev = r.models[prevJob]
	}
	return switching.Cost(r.opts.Scheme, r.cl.GPUs[m].Type, prev, r.models[nextJob], resident)
}

// park appends GPU m to the FIFO waiter list of a barrier slot.
func (s *Simulator) park(slot, m int) {
	s.waitNext[m] = -1
	if s.waitHead[slot] < 0 {
		s.waitHead[slot] = int32(m)
	} else {
		s.waitNext[s.waitTail[slot]] = int32(m)
	}
	s.waitTail[slot] = int32(m)
}

// roundDone implements roundWaker: wake the GPUs parked on the round's
// barrier, in the order they parked. The list is detached before the
// refreshes run; a woken GPU's head task is the very task that was
// blocked on this round, and its barrier is now final, so a refresh
// here can never re-park onto the slot being drained.
func (s *Simulator) roundDone(job core.JobID, round int) {
	slot := s.r.roundOff[job] + round
	m := s.waitHead[slot]
	s.waitHead[slot], s.waitTail[slot] = -1, -1
	for m >= 0 {
		next := s.waitNext[m]
		s.waitNext[m] = -1
		s.refresh(int(m))
		m = next
	}
}

// failGPU applies one permanent failure: the GPU is cut from the
// pool, its remaining tasks are stranded, and the replanner is
// re-run on the residual instance (all not-yet-executed tasks ×
// surviving GPUs) to refill the survivors' sequences. Tasks whose
// training already committed stand — pops are globally
// nondecreasing in start time, so everything committed started at
// or before the failure instant, and a task whose training began
// before the failure is allowed to finish (detection at task
// granularity, mirroring the distributed plane's lease
// granularity). Re-execution elsewhere restarts a round-r task
// from the round-(r-1) checkpoint, so migration never changes
// learned parameters (relaxed scale-fixed synchronization).
func (s *Simulator) failGPU(f faults.GPUFailure, replanner sched.Algorithm) error {
	r := &s.r
	m := f.GPU
	s.alive[m] = false
	r.res.GPUFailures++
	r.res.FailedGPUs = append(r.res.FailedGPUs, m)
	r.cFailures.Inc()
	if r.observed {
		kind := "device failure"
		if f.Crash {
			kind = "executor crash"
		}
		r.rec.Emit(obs.Event{
			Type: obs.EvGPUFailed, Time: f.Time, GPU: m, Job: -1,
			Note: fmt.Sprintf("injected %s at t=%g", kind, f.Time),
		})
	}
	g := &r.gpus[m]
	s.strandedBuf = append(s.strandedBuf[:0], g.seq[g.next:]...)
	stranded := s.strandedBuf
	g.seq, g.next = nil, 0
	if s.ready.Contains(m) {
		s.ready.Remove(m)
	}
	s.pendingBuf = s.pendingBuf[:0]
	s.aliveBuf = s.aliveBuf[:0]
	for mm := range r.gpus {
		if !s.alive[mm] {
			continue
		}
		s.aliveBuf = append(s.aliveBuf, mm)
		s.pendingBuf = append(s.pendingBuf, r.gpus[mm].seq[r.gpus[mm].next:]...)
	}
	s.pendingBuf = append(s.pendingBuf, stranded...)
	pending, aliveList := s.pendingBuf, s.aliveBuf
	if len(pending) == 0 {
		return nil // dead GPU had already drained; nothing to move
	}
	if len(aliveList) == 0 {
		return fmt.Errorf("sim: no surviving GPUs with %d tasks pending (GPU %d failed at t=%g)",
			len(pending), m, f.Time)
	}
	residual, err := faults.NewResidual(r.in, pending, aliveList)
	if err != nil {
		return fmt.Errorf("sim: recovery from GPU %d failure: %w", m, err)
	}
	plan2, err := replanner.Schedule(residual.Instance)
	if err != nil {
		return fmt.Errorf("sim: re-plan after GPU %d failure: %w", m, err)
	}
	seqs, err := residual.Sequences(plan2)
	if err != nil {
		return fmt.Errorf("sim: re-plan after GPU %d failure: %w", m, err)
	}
	for i := range s.waitHead {
		s.waitHead[i], s.waitTail[i] = -1, -1
	}
	for i := range s.waitNext {
		s.waitNext[i] = -1
	}
	for _, mm := range aliveList {
		gg := &r.gpus[mm]
		gg.seq, gg.next = seqs[mm], 0
		if gg.mem != nil {
			r.lookBuf = growCap(r.lookBuf, len(gg.seq))
			for _, t := range gg.seq {
				r.lookBuf = append(r.lookBuf, gpumem.JobKey(t.Job))
			}
			gg.mem.SetLookahead(r.lookBuf)
		}
		if s.ready.Contains(mm) {
			s.ready.Remove(mm)
		}
		s.refresh(mm)
	}
	r.res.Reschedules++
	r.cResched.Inc()
	r.res.TasksMigrated += len(stranded)
	r.cMigrated.Add(float64(len(stranded)))
	if r.observed {
		r.rec.Emit(obs.Event{
			Type: obs.EvReschedule, Time: f.Time, GPU: m, Job: -1,
			Note: fmt.Sprintf("tasks=%d gpus=%d", len(pending), len(aliveList)),
		})
		strandedSet := make(map[core.TaskRef]bool, len(stranded))
		for _, t := range stranded {
			strandedSet[t] = true
		}
		for mm, seq := range seqs {
			for _, t := range seq {
				if strandedSet[t] {
					r.rec.Emit(obs.Event{
						Type: obs.EvTaskMigrated, Time: f.Time, GPU: mm,
						Job: int(t.Job), Round: t.Round, Index: t.Index, From: m,
					})
				}
			}
		}
	}
	return nil
}
