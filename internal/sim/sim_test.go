package sim

import (
	"math"
	"strings"
	"testing"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/model"
	"hare/internal/sched"
	"hare/internal/stats"
	"hare/internal/switching"
)

func twoJobInstance() *core.Instance {
	return &core.Instance{
		NumGPUs: 2,
		Jobs: []*core.Job{
			{ID: 0, Name: "a", Weight: 1, Rounds: 2, Scale: 2},
			{ID: 1, Name: "b", Weight: 2, Arrival: 1, Rounds: 1, Scale: 1},
		},
		Train: [][]float64{{2, 3}, {1, 2}},
		Sync:  [][]float64{{0.5, 0.5}, {0.1, 0.1}},
	}
}

func planFor(t *testing.T, in *core.Instance) *core.Schedule {
	t.Helper()
	s, err := sched.NewHare().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReplayMatchesPlanWithoutOverheads(t *testing.T) {
	in := twoJobInstance()
	plan := planFor(t, in)
	res, err := Run(in, plan, nil, nil, Options{DisableSwitching: true})
	if err != nil {
		t.Fatal(err)
	}
	wantComps := plan.JobCompletions(in)
	for j, c := range res.JobCompletion {
		if math.Abs(c-wantComps[j]) > 1e-9 {
			t.Errorf("job %d realized %g, planned %g", j, c, wantComps[j])
		}
	}
	if math.Abs(res.WeightedJCT-plan.WeightedJCT(in)) > 1e-9 {
		t.Errorf("weighted JCT %g vs plan %g", res.WeightedJCT, plan.WeightedJCT(in))
	}
	if res.TotalSwitch != 0 || res.SwitchCount != 0 {
		t.Error("switching charged despite DisableSwitching")
	}
}

func TestReplayRejectsInfeasiblePlan(t *testing.T) {
	in := twoJobInstance()
	bad := core.NewSchedule()
	for _, tr := range in.Tasks() {
		bad.Place(tr, 0, 0) // everything overlapping at time 0
	}
	if _, err := Run(in, bad, nil, nil, Options{DisableSwitching: true}); err == nil ||
		!strings.Contains(err.Error(), "invalid plan") {
		t.Errorf("infeasible plan accepted: %v", err)
	}
}

func TestSwitchingChargedBetweenJobs(t *testing.T) {
	// Two single-task jobs back-to-back on one GPU: exactly two
	// inter-job transitions (cold start + switch).
	in := &core.Instance{
		NumGPUs: 1,
		Jobs: []*core.Job{
			{ID: 0, Name: "a", Weight: 1, Rounds: 1, Scale: 1},
			{ID: 1, Name: "b", Weight: 1, Rounds: 1, Scale: 1},
		},
		Train: [][]float64{{5}, {5}},
		Sync:  [][]float64{{0}, {0}},
	}
	plan := core.NewSchedule()
	plan.Place(core.TaskRef{Job: 0, Round: 0}, 0, 0)
	plan.Place(core.TaskRef{Job: 1, Round: 0}, 0, 5)
	cl := cluster.New([]cluster.Spec{{Type: cluster.V100, Count: 1}}, 1)
	models := []*model.Model{model.MustByName("ResNet50"), model.MustByName("VGG19")}

	res, err := Run(in, plan, cl, models, Options{Scheme: switching.PipeSwitch})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchCount != 2 {
		t.Errorf("%d switches, want 2 (cold start + inter-job)", res.SwitchCount)
	}
	if res.TotalSwitch <= 0 {
		t.Error("no switching time charged")
	}
	// The realized completion is delayed by the switch.
	if res.JobCompletion[1] <= 10 {
		t.Errorf("job 1 completed at %g; switching not on the critical path", res.JobCompletion[1])
	}
}

func TestConsecutiveSameJobTasksFree(t *testing.T) {
	in := &core.Instance{
		NumGPUs: 1,
		Jobs:    []*core.Job{{ID: 0, Name: "a", Weight: 1, Rounds: 3, Scale: 1}},
		Train:   [][]float64{{2}},
		Sync:    [][]float64{{0}},
	}
	plan := core.NewSchedule()
	for r := 0; r < 3; r++ {
		plan.Place(core.TaskRef{Job: 0, Round: r}, 0, float64(r*2))
	}
	cl := cluster.New([]cluster.Spec{{Type: cluster.V100, Count: 1}}, 1)
	res, err := Run(in, plan, cl, []*model.Model{model.MustByName("FastGCN")}, Options{Scheme: switching.Default})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchCount != 1 {
		t.Errorf("%d switches, want only the cold start", res.SwitchCount)
	}
}

func TestSpeculativeMemoryReducesStall(t *testing.T) {
	// Two jobs alternating on one GPU: speculative memory should turn
	// the later switches into residency hits.
	const rounds = 6
	in := &core.Instance{NumGPUs: 1}
	models := []*model.Model{model.MustByName("GraphSAGE"), model.MustByName("FastGCN")}
	for i := range models {
		in.Jobs = append(in.Jobs, &core.Job{ID: core.JobID(i), Name: "x", Weight: 1, Rounds: rounds, Scale: 1})
		in.Train = append(in.Train, []float64{1})
		in.Sync = append(in.Sync, []float64{0})
	}
	plan := core.NewSchedule()
	tt := 0.0
	for r := 0; r < rounds; r++ {
		for j := range models {
			plan.Place(core.TaskRef{Job: core.JobID(j), Round: r}, 0, tt)
			tt += 1
		}
	}
	cl := cluster.New([]cluster.Spec{{Type: cluster.V100, Count: 1}}, 1)
	with, err := Run(in, plan, cl, models, Options{Scheme: switching.Hare, Speculative: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(in, plan, cl, models, Options{Scheme: switching.Hare})
	if err != nil {
		t.Fatal(err)
	}
	if with.ResidencyHits == 0 {
		t.Error("no residency hits in an alternation that fits in memory")
	}
	if with.TotalSwitch >= without.TotalSwitch {
		t.Errorf("speculative stall %.5f not below %.5f", with.TotalSwitch, without.TotalSwitch)
	}
}

func TestJitterPreservesFeasibilityAndChangesTimes(t *testing.T) {
	rng := stats.New(71)
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng.Split())
		plan := planFor(t, in)
		base, err := Run(in, plan, nil, nil, Options{DisableSwitching: true})
		if err != nil {
			t.Fatal(err)
		}
		jit, err := Run(in, plan, nil, nil, Options{DisableSwitching: true, JitterFrac: 0.05, Seed: 1})
		if err != nil {
			t.Fatalf("trial %d: jittered replay failed: %v", trial, err)
		}
		if jit.WeightedJCT == base.WeightedJCT {
			t.Error("jitter had no effect")
		}
		// Realized barriers still respected.
		assertBarriers(t, in, jit)
	}
}

func assertBarriers(t *testing.T, in *core.Instance, res *Result) {
	t.Helper()
	roundEnd := make(map[core.JobID]map[int]float64)
	for _, r := range res.Trace.Records {
		if roundEnd[r.Task.Job] == nil {
			roundEnd[r.Task.Job] = make(map[int]float64)
		}
		if e := r.End(); e > roundEnd[r.Task.Job][r.Task.Round] {
			roundEnd[r.Task.Job][r.Task.Round] = e
		}
	}
	for _, r := range res.Trace.Records {
		if r.Task.Round > 0 && r.Start < roundEnd[r.Task.Job][r.Task.Round-1]-1e-9 {
			t.Errorf("task %v starts before its barrier", r.Task)
		}
		if r.Start < in.Jobs[r.Task.Job].Arrival-1e-9 {
			t.Errorf("task %v starts before arrival", r.Task)
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	rng := stats.New(73)
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng.Split())
		plan := planFor(t, in)
		res, err := Run(in, plan, nil, nil, Options{DisableSwitching: true, UtilBins: 16})
		if err != nil {
			t.Fatal(err)
		}
		for m, u := range res.Utilization {
			if u < 0 || u > 1+1e-9 {
				t.Errorf("GPU %d utilization %g", m, u)
			}
		}
		for _, series := range res.UtilSeries {
			if len(series) != 16 {
				t.Fatalf("series has %d bins", len(series))
			}
			for _, v := range series {
				if v < 0 || v > 1+1e-9 {
					t.Errorf("bin value %g", v)
				}
			}
		}
		// Busy seconds equal the summed train times.
		var busy, train float64
		for _, b := range res.BusySeconds {
			busy += b
		}
		for _, r := range res.Trace.Records {
			train += r.Train
		}
		if math.Abs(busy-train) > 1e-6 {
			t.Errorf("busy %.4f != trace train %.4f", busy, train)
		}
	}
}

func TestHostAwareSyncShrinksSameHostSync(t *testing.T) {
	// One 2-task job. Same-host fleet: both workers share the PS's
	// machine, so realized sync shrinks by network/intra ratio.
	// Split fleet: the second worker pays the full network sync.
	in := &core.Instance{
		NumGPUs: 2,
		Jobs:    []*core.Job{{ID: 0, Name: "j", Weight: 1, Rounds: 1, Scale: 2}},
		Train:   [][]float64{{4, 4}},
		Sync:    [][]float64{{1, 1}},
	}
	plan := core.NewSchedule()
	plan.Place(core.TaskRef{Job: 0, Round: 0, Index: 0}, 0, 0)
	plan.Place(core.TaskRef{Job: 0, Round: 0, Index: 1}, 1, 0)
	models := []*model.Model{model.MustByName("ResNet50")}

	sameHost := cluster.New([]cluster.Spec{{Type: cluster.V100, Count: 2}}, 2)
	split := cluster.New([]cluster.Spec{{Type: cluster.V100, Count: 2}}, 1)

	runOn := func(cl *cluster.Cluster) *Result {
		res, err := Run(in, plan, cl, models, Options{
			DisableSwitching: true, HostAwareSync: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	same := runOn(sameHost)
	far := runOn(split)
	if same.JobCompletion[0] >= far.JobCompletion[0] {
		t.Errorf("same-host sync (%.3f) not faster than cross-host (%.3f)",
			same.JobCompletion[0], far.JobCompletion[0])
	}
	// Cross-host: the off-PS worker keeps the full 1 s sync → C = 5.
	if math.Abs(far.JobCompletion[0]-5) > 1e-9 {
		t.Errorf("cross-host completion %.3f, want 5", far.JobCompletion[0])
	}
	// Same-host: both workers sync at the intra-host rate.
	ratio := sameHost.NetworkBps / sameHost.IntraHostBps
	if want := 4 + ratio; math.Abs(same.JobCompletion[0]-want) > 1e-9 {
		t.Errorf("same-host completion %.3f, want %.3f", same.JobCompletion[0], want)
	}
}

func TestDimensionMismatches(t *testing.T) {
	in := twoJobInstance()
	plan := planFor(t, in)
	cl := cluster.New([]cluster.Spec{{Type: cluster.V100, Count: 3}}, 1)
	if _, err := Run(in, plan, cl, nil, Options{}); err == nil {
		t.Error("cluster size mismatch accepted")
	}
	cl2 := cluster.New([]cluster.Spec{{Type: cluster.V100, Count: 2}}, 1)
	if _, err := Run(in, plan, cl2, []*model.Model{model.MustByName("VGG19")}, Options{}); err == nil {
		t.Error("model count mismatch accepted")
	}
}

func randomInstance(rng *stats.RNG) *core.Instance {
	nm := 1 + rng.Intn(4)
	nj := 1 + rng.Intn(5)
	in := &core.Instance{NumGPUs: nm}
	for j := 0; j < nj; j++ {
		in.Jobs = append(in.Jobs, &core.Job{
			ID: core.JobID(j), Name: "r", Weight: rng.Uniform(0.5, 3),
			Arrival: rng.Uniform(0, 10),
			Rounds:  1 + rng.Intn(4), Scale: 1 + rng.Intn(nm),
		})
		tr := make([]float64, nm)
		sy := make([]float64, nm)
		for m := 0; m < nm; m++ {
			tr[m] = rng.Uniform(0.5, 5)
			sy[m] = rng.Uniform(0, 1)
		}
		in.Train = append(in.Train, tr)
		in.Sync = append(in.Sync, sy)
	}
	return in
}
