package sim

import (
	"runtime"
	"sync"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/model"
	"hare/internal/trace"
)

// Sharded parallel replay.
//
// A schedule decomposes when its GPU/job contact graph — jobs linked
// to every GPU that runs one of their tasks — has more than one
// connected component. Components share nothing a replay reads or
// writes: barriers are per-job, switching state and interval lanes are
// per-GPU, and a component's pop order is the global pop order
// restricted to its GPUs (the selection key (start, GPU id) never
// compares across components' candidates in a way that affects
// within-component order). Each component therefore replays
// independently on the normal serial engine, and the global trace is
// recovered by merging the shard traces on (start, global GPU id) —
// the exact total order the serial loop pops in, because pops are
// globally nondecreasing in start and equal-start pops ascend by GPU
// id.
//
// Floating-point accounting is kept bit-identical by recomputing the
// order-sensitive aggregates from the merged stream: TotalSwitch is
// re-folded over the merged records (the serial engine adds only
// positive stalls, in pop order), WeightedJCT is re-summed in job-id
// order, and Utilization is re-divided by the global makespan.
// Per-job and per-GPU values are component-local sums and carry over
// bit-exactly.
//
// Option sets whose accounting is order-global across components are
// ineligible and fall back to the serial engine: jitter (one RNG
// stream in pop order), transient faults and stragglers (per-GPU
// streams seeded by global id and a float loss accumulator in pop
// order), permanent failures (global re-plan), utilization series
// (binned over the global makespan), recorders (one event stream) and
// metrics (shared counters).

// shardWorkers resolves Options.Parallel to a worker count.
func shardWorkers(opts Options) int {
	switch {
	case opts.Parallel > 1:
		return opts.Parallel
	case opts.Parallel < 0:
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// shardable reports whether the option set replays identically when
// decomposed (see the package comment above).
func shardable(opts Options) bool {
	return !opts.Recorder.Enabled() &&
		opts.Metrics == nil &&
		opts.JitterFrac == 0 &&
		opts.UtilBins == 0 &&
		opts.Faults.Empty()
}

// shard is one connected component of the GPU/job contact graph.
type shard struct {
	gpus []int // global GPU ids, ascending
	jobs []int // global job ids, ascending
}

// components partitions GPUs and jobs into contact components. seqs
// are the per-GPU task sequences; only GPUs that run at least one task
// join a component (taskless GPUs have nothing to replay).
func components(in *core.Instance, seqs [][]core.TaskRef) []shard {
	parent := make([]int, in.NumGPUs)
	for m := range parent {
		parent[m] = m
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	jobAnchor := make([]int, len(in.Jobs))
	for j := range jobAnchor {
		jobAnchor[j] = -1
	}
	for m, seq := range seqs {
		for _, t := range seq {
			if a := jobAnchor[t.Job]; a < 0 {
				jobAnchor[t.Job] = m
			} else if ra, rm := find(a), find(m); ra != rm {
				parent[ra] = rm
			}
		}
	}
	compOf := make(map[int]int)
	var shards []shard
	for m, seq := range seqs {
		if len(seq) == 0 {
			continue
		}
		root := find(m)
		ci, ok := compOf[root]
		if !ok {
			ci = len(shards)
			compOf[root] = ci
			shards = append(shards, shard{})
		}
		shards[ci].gpus = append(shards[ci].gpus, m)
	}
	for j, a := range jobAnchor {
		// Every job has at least one task, so every anchor is set.
		shards[compOf[find(a)]].jobs = append(shards[compOf[find(a)]].jobs, j)
	}
	return shards
}

// buildShard materializes one component as a self-contained
// (instance, schedule, cluster, models) tuple with dense local ids.
// Job and GPU local ids ascend with their global ids, so the
// sub-replay's tie-breaks reproduce the global ones.
func buildShard(sh shard, in *core.Instance, cl *cluster.Cluster, models []*model.Model, seqs [][]core.TaskRef, sch *core.Schedule) (*core.Instance, *core.Schedule, *cluster.Cluster, []*model.Model) {
	localJob := make(map[core.JobID]core.JobID, len(sh.jobs))
	subIn := &core.Instance{
		Jobs:    make([]*core.Job, len(sh.jobs)),
		NumGPUs: len(sh.gpus),
		Train:   make([][]float64, len(sh.jobs)),
		Sync:    make([][]float64, len(sh.jobs)),
	}
	for lj, gj := range sh.jobs {
		j := *in.Jobs[gj]
		j.ID = core.JobID(lj)
		subIn.Jobs[lj] = &j
		localJob[core.JobID(gj)] = core.JobID(lj)
		subIn.Train[lj] = make([]float64, len(sh.gpus))
		subIn.Sync[lj] = make([]float64, len(sh.gpus))
		for lm, gm := range sh.gpus {
			subIn.Train[lj][lm] = in.Train[gj][gm]
			subIn.Sync[lj][lm] = in.Sync[gj][gm]
		}
	}
	var subCl *cluster.Cluster
	if cl != nil {
		subCl = &cluster.Cluster{
			GPUs:         make([]cluster.GPU, len(sh.gpus)),
			NetworkBps:   cl.NetworkBps,
			IntraHostBps: cl.IntraHostBps,
		}
		for lm, gm := range sh.gpus {
			g := cl.GPUs[gm]
			// Local dense id; the global host id is preserved so
			// host-aware sync sees the same same-host relations.
			subCl.GPUs[lm] = cluster.GPU{ID: lm, Type: g.Type, Host: g.Host}
			if g.Host+1 > subCl.Hosts {
				subCl.Hosts = g.Host + 1
			}
		}
	}
	var subModels []*model.Model
	if models != nil {
		subModels = make([]*model.Model, len(sh.jobs))
		for lj, gj := range sh.jobs {
			subModels[lj] = models[gj]
		}
	}
	subSch := core.NewSchedule()
	for lm, gm := range sh.gpus {
		for _, t := range seqs[gm] {
			p := sch.Placements[t]
			subSch.Place(core.TaskRef{Job: localJob[t.Job], Round: t.Round, Index: t.Index}, lm, p.Start)
		}
	}
	return subIn, subSch, subCl, subModels
}

// runSharded attempts a sharded replay. handled=false means the
// caller should fall back to the serial engine: the options are
// ineligible, the schedule does not decompose, or validation failed
// (the serial path re-derives the identical error).
func runSharded(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options, workers int) (*Result, error, bool) {
	if !shardable(opts) {
		return nil, nil, false
	}
	stopSetup := opts.Phases.Start("sim_setup")
	if in.Validate() != nil || core.ValidatePlacements(in, sch) != nil ||
		(cl != nil && cl.Size() != in.NumGPUs) ||
		(models != nil && len(models) != len(in.Jobs)) {
		stopSetup()
		return nil, nil, false
	}
	seqs := sch.Sequences(in.NumGPUs)
	if core.ValidateScheduleSeqs(in, sch, seqs) != nil {
		stopSetup()
		return nil, nil, false
	}
	shards := components(in, seqs)
	if len(shards) < 2 {
		stopSetup()
		return nil, nil, false
	}

	subOpts := opts
	subOpts.Parallel = 0
	subOpts.Recorder = nil
	subOpts.Phases = nil
	results := make([]*Result, len(shards))
	errs := make([]error, len(shards))
	work := make(chan int)
	var wg sync.WaitGroup
	if workers > len(shards) {
		workers = len(shards)
	}
	stopSetup()
	stopLoop := opts.Phases.Start("sim_event_loop")
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range work {
				subIn, subSch, subCl, subModels := buildShard(shards[si], in, cl, models, seqs, sch)
				results[si], errs[si] = Run(subIn, subSch, subCl, subModels, subOpts)
			}
		}()
	}
	for si := range shards {
		work <- si
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		// Lowest-index error: the one the serial run would hit first.
		if err != nil {
			stopLoop()
			return nil, err, true
		}
	}
	res := mergeShards(in, shards, results)
	stopLoop()
	return res, nil, true
}

// mergeShards folds the shard results back into the global Result,
// bit-identical to a serial replay (see the package comment).
func mergeShards(in *core.Instance, shards []shard, results []*Result) *Result {
	res := &Result{
		Trace:           &trace.Trace{},
		JobCompletion:   make([]float64, len(in.Jobs)),
		BusySeconds:     make([]float64, in.NumGPUs),
		OverheadSeconds: make([]float64, in.NumGPUs),
		Utilization:     make([]float64, in.NumGPUs),
	}
	total := 0
	for si, r := range results {
		total += len(r.Trace.Records)
		for lj, gj := range shards[si].jobs {
			res.JobCompletion[gj] = r.JobCompletion[lj]
		}
		for lm, gm := range shards[si].gpus {
			res.BusySeconds[gm] = r.BusySeconds[lm]
			res.OverheadSeconds[gm] = r.OverheadSeconds[lm]
		}
		res.SwitchCount += r.SwitchCount
		res.ResidencyHits += r.ResidencyHits
		if r.Makespan > res.Makespan {
			res.Makespan = r.Makespan
		}
	}

	// K-way merge of the shard traces on (start, global GPU): each
	// shard's records are already in that order (a serial replay pops
	// in it, and local GPU ids ascend with global ids), so the merged
	// stream is the serial engine's exact pop order.
	res.Trace.Records = make([]trace.TaskRecord, 0, total)
	heads := make([]int, len(results))
	for len(res.Trace.Records) < total {
		best := -1
		var bestStart float64
		var bestGPU int
		for si, r := range results {
			if heads[si] >= len(r.Trace.Records) {
				continue
			}
			rec := r.Trace.Records[heads[si]]
			gm := shards[si].gpus[rec.GPU]
			//lint:allow floateq exact tie arm applies the deterministic GPU-id merge order
			if best == -1 || rec.Start < bestStart || (rec.Start == bestStart && gm < bestGPU) {
				best, bestStart, bestGPU = si, rec.Start, gm
			}
		}
		rec := results[best].Trace.Records[heads[best]]
		heads[best]++
		rec.GPU = shards[best].gpus[rec.GPU]
		rec.Task.Job = core.JobID(shards[best].jobs[rec.Task.Job])
		res.Trace.Records = append(res.Trace.Records, rec)
		// TotalSwitch re-folds in pop order; the serial engine adds
		// only positive stalls, so zero-switch records add nothing.
		if rec.Switch > 0 {
			res.TotalSwitch += rec.Switch
		}
	}

	for j, c := range res.JobCompletion {
		res.WeightedJCT += in.Jobs[j].Weight * c
	}
	if res.Makespan > 0 {
		for m := range res.Utilization {
			res.Utilization[m] = res.BusySeconds[m] / res.Makespan
		}
	}
	return res
}
