package sim

// Tests for the pooled Simulator and the component decomposition that
// backs sharded replay.

import (
	"reflect"
	"testing"

	"hare/internal/core"
	"hare/internal/sched"
	"hare/internal/switching"
)

// TestSimulatorReuseDeterministic replays A, then a different workload
// B, then A again on one Simulator: the two A results must be
// bit-identical (stale state from B must not leak into the arenas),
// and both must match the package-level Run.
func TestSimulatorReuseDeterministic(t *testing.T) {
	in, cl, models := goldenWorkload(t)
	plan, err := sched.NewHare().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	optsA := Options{Scheme: switching.Hare, Speculative: true, Seed: 42}
	optsB := Options{Scheme: switching.Default, JitterFrac: 0.03, Seed: 9, UtilBins: 8, HostAwareSync: true}

	fresh, err := Run(in, plan, cl, models, optsA)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSimulator()
	runClone := func(opts Options) *Result {
		res, err := s.Run(in, plan, cl, models, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Clone()
	}
	a1 := runClone(optsA)
	b := runClone(optsB)
	a2 := runClone(optsA)

	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("re-running A on a reused Simulator diverged from the first A run")
	}
	if !reflect.DeepEqual(a1, fresh) {
		t.Fatal("reused Simulator diverged from package-level Run")
	}
	if reflect.DeepEqual(a1, b) {
		t.Fatal("A and B produced identical results; B did not exercise the arenas")
	}
	if b.UtilSeries == nil || a2.UtilSeries != nil {
		t.Fatal("UtilSeries presence leaked between pooled runs")
	}
}

// TestRunShardedHandles pins that a decomposable schedule really
// takes the sharded path (handled=true) — without this, a regression
// in shardable or components could silently route everything through
// the serial fallback and the equivalence suite would still pass.
func TestRunShardedHandles(t *testing.T) {
	in := &core.Instance{
		Jobs: []*core.Job{
			{ID: 0, Weight: 1, Rounds: 2, Scale: 1},
			{ID: 1, Weight: 2, Rounds: 2, Scale: 1},
		},
		NumGPUs: 2,
		Train:   [][]float64{{1, 1}, {2, 2}},
		Sync:    [][]float64{{0.5, 0.5}, {0.25, 0.25}},
	}
	sch := core.NewSchedule()
	sch.Place(core.TaskRef{Job: 0, Round: 0, Index: 0}, 0, 0)
	sch.Place(core.TaskRef{Job: 0, Round: 1, Index: 0}, 0, 1.5)
	sch.Place(core.TaskRef{Job: 1, Round: 0, Index: 0}, 1, 0)
	sch.Place(core.TaskRef{Job: 1, Round: 1, Index: 0}, 1, 2.25)
	opts := Options{DisableSwitching: true}

	res, err, handled := runSharded(in, sch, nil, nil, opts, 2)
	if !handled {
		t.Fatal("two-component schedule fell back to the serial engine")
	}
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(in, sch, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("sharded result diverged:\n got %+v\nwant %+v", res, want)
	}

	// Ineligible options must decline immediately.
	jopts := opts
	jopts.JitterFrac = 0.1
	if _, _, handled := runSharded(in, sch, nil, nil, jopts, 2); handled {
		t.Fatal("jittered run must not take the sharded path")
	}
}

// TestShardComponents checks the union-find decomposition on a
// hand-built contact graph: jobs 0 on GPUs {0,1}, job 1 on GPU 2,
// job 2 on GPUs {2,3} (merging with job 1), and GPU 4 idle.
func TestShardComponents(t *testing.T) {
	in := &core.Instance{
		Jobs: []*core.Job{
			{ID: 0, Weight: 1, Rounds: 1, Scale: 2},
			{ID: 1, Weight: 1, Rounds: 1, Scale: 1},
			{ID: 2, Weight: 1, Rounds: 1, Scale: 2},
		},
		NumGPUs: 5,
	}
	seqs := [][]core.TaskRef{
		{{Job: 0, Round: 0, Index: 0}},
		{{Job: 0, Round: 0, Index: 1}},
		{{Job: 1, Round: 0, Index: 0}, {Job: 2, Round: 0, Index: 0}},
		{{Job: 2, Round: 0, Index: 1}},
		nil, // idle GPU joins no shard
	}
	shards := components(in, seqs)
	if len(shards) != 2 {
		t.Fatalf("got %d components, want 2", len(shards))
	}
	got := map[int][2][]int{}
	for _, sh := range shards {
		got[sh.gpus[0]] = [2][]int{sh.gpus, sh.jobs}
	}
	want := map[int][2][]int{
		0: {{0, 1}, {0}},
		2: {{2, 3}, {1, 2}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("components = %v, want %v", got, want)
	}
}
