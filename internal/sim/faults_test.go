package sim

import (
	"reflect"
	"strings"
	"testing"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/faults"
	"hare/internal/model"
	"hare/internal/obs"
	"hare/internal/switching"
	"hare/internal/testbed"
	"hare/internal/workload"
)

// TestSimTransientFaultsObservable: a nonzero fault rate produces
// retries, charges their lost GPU time, and leaves the schedule
// feasibility invariants intact.
func TestSimTransientFaultsObservable(t *testing.T) {
	in, cl, models := goldenWorkload(t)
	plan := planFor(t, in)
	clean, err := Run(in, plan, cl, models, Options{Scheme: switching.Hare})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(1 << 16)
	res, err := Run(in, plan, cl, models, Options{
		Scheme:   switching.Hare,
		Faults:   &faults.Plan{Rate: 0.1, Seed: 3},
		Recorder: obs.NewRecorder(ring),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 || res.LostSeconds <= 0 {
		t.Fatalf("rate 0.1 produced retries=%d lost=%g — injection inert", res.Retries, res.LostSeconds)
	}
	if res.WeightedJCT <= clean.WeightedJCT {
		t.Errorf("faulty WJCT %g not above fault-free %g", res.WeightedJCT, clean.WeightedJCT)
	}
	assertBarriers(t, in, res)
	var injected int
	for _, e := range ring.Snapshot() {
		if e.Type == obs.EvFaultInjected {
			injected++
		}
	}
	if injected == 0 {
		t.Error("no fault.injected events emitted")
	}
}

// TestSimStragglerSlowsOnlyItsGPU: a straggler factor stretches
// training on the slow GPU and nothing else.
func TestSimStragglerSlowsOnlyItsGPU(t *testing.T) {
	in := twoJobInstance()
	plan := planFor(t, in)
	clean, err := Run(in, plan, nil, nil, Options{DisableSwitching: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, plan, nil, nil, Options{
		DisableSwitching: true,
		Faults:           &faults.Plan{Stragglers: []faults.Straggler{{GPU: 1, Factor: 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Trace.Records {
		want := clean.Trace.Records[i].Train
		if r.GPU == 1 {
			want *= 2
		}
		if r.Train != want {
			t.Errorf("task %v on gpu%d train %g, want %g", r.Task, r.GPU, r.Train, want)
		}
	}
}

// failureWorkload is a mid-sized heterogeneous workload for the
// failure tests (the golden workload is overkill for re-planning).
func failureWorkload(t testing.TB) (*core.Instance, *cluster.Cluster, []*model.Model) {
	t.Helper()
	cl := cluster.Heterogeneous(cluster.HighHeterogeneity, 6)
	specs := workload.Generate(workload.Options{
		NumJobs: 8, RoundsScale: 0.1, MaxSync: cl.Size(), Seed: 17,
	})
	in := &core.Instance{NumGPUs: cl.Size()}
	for _, s := range specs {
		m := model.MustByName(s.Model)
		in.Jobs = append(in.Jobs, s.Job)
		tr := make([]float64, cl.Size())
		sy := make([]float64, cl.Size())
		for _, g := range cl.GPUs {
			tr[g.ID] = m.BatchSeconds(g.Type.Speed, 1) * 20
			sy[g.ID] = 0.05
		}
		in.Train = append(in.Train, tr)
		in.Sync = append(in.Sync, sy)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	models := make([]*model.Model, len(specs))
	for i, s := range specs {
		models[i] = model.MustByName(s.Model)
	}
	return in, cl, models
}

// TestSimFailureRescheduleCompletes: permanent GPU failures strand
// work, the replanner migrates it, and the run still executes every
// task exactly once while respecting the round barriers. Dead GPUs
// start nothing after their failure instant.
func TestSimFailureRescheduleCompletes(t *testing.T) {
	in, cl, models := failureWorkload(t)
	plan := planFor(t, in)
	clean, err := Run(in, plan, cl, models, Options{Scheme: switching.Hare})
	if err != nil {
		t.Fatal(err)
	}
	failAt := map[int]float64{2: clean.Makespan * 0.25, 4: clean.Makespan * 0.55}
	ring := obs.NewRingSink(1 << 16)
	reg := obs.NewRegistry()
	res, err := Run(in, plan, cl, models, Options{
		Scheme: switching.Hare,
		Faults: &faults.Plan{Failures: []faults.GPUFailure{
			{GPU: 2, Time: failAt[2]},
			{GPU: 4, Time: failAt[4], Crash: true},
		}},
		Recorder: obs.NewRecorder(ring),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.FailedGPUs, []int{2, 4}) {
		t.Errorf("FailedGPUs = %v, want [2 4]", res.FailedGPUs)
	}
	if res.GPUFailures != 2 || res.Reschedules != 2 {
		t.Errorf("failures=%d reschedules=%d, want 2 and 2", res.GPUFailures, res.Reschedules)
	}
	if res.TasksMigrated < 1 {
		t.Errorf("tasks migrated = %d, want >= 1", res.TasksMigrated)
	}
	// Exactly-once execution of the full instance.
	if len(res.Trace.Records) != in.NumTasks() {
		t.Fatalf("executed %d tasks, want %d", len(res.Trace.Records), in.NumTasks())
	}
	seen := make(map[core.TaskRef]bool)
	for _, r := range res.Trace.Records {
		if seen[r.Task] {
			t.Errorf("task %v executed twice", r.Task)
		}
		seen[r.Task] = true
		if ft, dead := failAt[r.GPU]; dead && r.Start > ft {
			t.Errorf("task %v starts on dead gpu%d at %g (failed at %g)", r.Task, r.GPU, r.Start, ft)
		}
	}
	assertBarriers(t, in, res)
	// Losing a third of the fleet cannot speed the workload up.
	if res.Makespan < clean.Makespan {
		t.Errorf("makespan with failures %g below fault-free %g", res.Makespan, clean.Makespan)
	}
	if c := reg.Counter("hare_sim_gpu_failures_total").Value(); c != 2 {
		t.Errorf("failure counter = %g, want 2", c)
	}
	var migrated int
	for _, e := range ring.Snapshot() {
		if e.Type == obs.EvTaskMigrated {
			migrated++
		}
	}
	if migrated != res.TasksMigrated {
		t.Errorf("task.migrated events = %d, result says %d", migrated, res.TasksMigrated)
	}
}

// TestSimFailureSurvivorsFewerThanScale: when failures leave fewer
// GPUs than some job's Scale, the residual's virtual round splitting
// keeps the re-plan feasible — relaxed scale-fixed sync lets the wide
// rounds serialize on the survivors — and the run still executes every
// task exactly once.
func TestSimFailureSurvivorsFewerThanScale(t *testing.T) {
	in, cl, models := failureWorkload(t)
	maxScale := 0
	for _, j := range in.Jobs {
		if j.Scale > maxScale {
			maxScale = j.Scale
		}
	}
	if maxScale <= 2 {
		t.Fatalf("workload max scale %d does not exceed the 2 survivors — test is inert", maxScale)
	}
	plan := planFor(t, in)
	clean, err := Run(in, plan, cl, models, Options{Scheme: switching.Hare})
	if err != nil {
		t.Fatal(err)
	}
	var fp faults.Plan
	for i, g := range []int{1, 2, 3, 4} { // survivors: 0 and 5
		fp.Failures = append(fp.Failures, faults.GPUFailure{
			GPU: g, Time: clean.Makespan * float64(i+1) / 6,
		})
	}
	res, err := Run(in, plan, cl, models, Options{Scheme: switching.Hare, Faults: &fp})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUFailures != 4 || res.Reschedules != 4 {
		t.Errorf("failures=%d reschedules=%d, want 4 and 4", res.GPUFailures, res.Reschedules)
	}
	if len(res.Trace.Records) != in.NumTasks() {
		t.Fatalf("executed %d tasks, want %d", len(res.Trace.Records), in.NumTasks())
	}
	seen := make(map[core.TaskRef]bool)
	for _, r := range res.Trace.Records {
		if seen[r.Task] {
			t.Errorf("task %v executed twice", r.Task)
		}
		seen[r.Task] = true
	}
	assertBarriers(t, in, res)
}

// TestSimFailureDeterminism: the same failure plan replays to the
// exact same Result, trace included.
func TestSimFailureDeterminism(t *testing.T) {
	in, cl, models := failureWorkload(t)
	plan := planFor(t, in)
	opts := Options{
		Scheme:      switching.Hare,
		Speculative: true,
		JitterFrac:  0.03,
		Seed:        11,
		Faults: &faults.Plan{
			Rate: 0.05, Seed: 5,
			Failures:   []faults.GPUFailure{{GPU: 1, Time: 40}},
			Stragglers: []faults.Straggler{{GPU: 3, Factor: 1.3}},
		},
	}
	a, err := Run(in, plan, cl, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, plan, cl, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same failure plan replayed to different results")
	}
}

// TestSimAllGPUsFailingIsUnrecoverable.
func TestSimAllGPUsFailingIsUnrecoverable(t *testing.T) {
	in := twoJobInstance()
	plan := planFor(t, in)
	_, err := Run(in, plan, nil, nil, Options{
		DisableSwitching: true,
		Faults: &faults.Plan{Failures: []faults.GPUFailure{
			{GPU: 0, Time: 0}, {GPU: 1, Time: 0},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "no surviving GPUs") {
		t.Errorf("err = %v, want unrecoverable-run error", err)
	}
}

// TestReferenceRejectsFailurePlans: the reference engine owns no
// failure loop and must say so rather than silently ignore the plan.
func TestReferenceRejectsFailurePlans(t *testing.T) {
	in := twoJobInstance()
	plan := planFor(t, in)
	_, err := RunReference(in, plan, nil, nil, Options{
		DisableSwitching: true,
		Faults:           &faults.Plan{Failures: []faults.GPUFailure{{GPU: 0, Time: 1}}},
	})
	if err == nil || !strings.Contains(err.Error(), "RunReference") {
		t.Errorf("err = %v, want RunReference rejection", err)
	}
}

// TestSimRetriesMatchTestbed: for the same plan and (rate, seed) the
// simulator and the in-process testbed lose the same number of
// attempts — the per-GPU positional fault streams are the contract
// that makes fault experiments transferable between backends.
func TestSimRetriesMatchTestbed(t *testing.T) {
	in, cl, models := failureWorkload(t)
	plan := planFor(t, in)
	fp := &faults.Plan{Rate: 0.2, Seed: 9}
	simRes, err := Run(in, plan, cl, models, Options{Scheme: switching.Hare, Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	tbRes, err := testbed.Run(in, plan, cl, models, testbed.Options{TimeScale: 1e-4, Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Retries == 0 {
		t.Fatal("rate 0.2 produced zero retries")
	}
	if simRes.Retries != tbRes.Retries {
		t.Errorf("sim retries %d != testbed retries %d", simRes.Retries, tbRes.Retries)
	}
}
