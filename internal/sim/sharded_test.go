package sim_test

// Sharded-replay equivalence tests. These live in an external test
// package because they build their multi-component workloads with
// internal/tenants, which itself imports sim.

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hare/internal/faults"
	"hare/internal/gpumem"
	"hare/internal/sim"
	"hare/internal/switching"
	"hare/internal/tenants"
	"hare/internal/trace"
)

// shardedTraceHash mirrors the internal equivalence suite's trace
// fingerprint: every realized field at full float64 precision.
func shardedTraceHash(tr *trace.Trace) uint64 {
	h := fnv.New64a()
	for _, r := range tr.Records {
		fmt.Fprintf(h, "%v|%d|%.17g|%.17g|%.17g|%.17g\n",
			r.Task, r.GPU, r.Start, r.Train, r.Sync, r.Switch)
	}
	return h.Sum64()
}

func buildTenantsTrace(t testing.TB, cfg tenants.Config) *tenants.Trace {
	t.Helper()
	tr, err := tenants.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestShardedMatchesSerial replays a four-tenant trace under every
// option set — the shardable ones exercise the merge, the rest the
// silent serial fallback — and requires the Parallel result to be
// deeply equal to both the serial Run and the RunReference spec.
func TestShardedMatchesSerial(t *testing.T) {
	tr := buildTenantsTrace(t, tenants.Config{
		Tenants: 4, JobsPerTenant: 6, GPUsPerTenant: 6, RoundsScale: 0.05, Seed: 21,
	})
	cases := []struct {
		name string
		opts sim.Options
	}{
		{"plain", sim.Options{DisableSwitching: true}},
		{"default", sim.Options{Scheme: switching.Default}},
		{"pipeswitch", sim.Options{Scheme: switching.PipeSwitch}},
		{"hare", sim.Options{Scheme: switching.Hare}},
		{"hare-spec", sim.Options{Scheme: switching.Hare, Speculative: true}},
		{"hare-belady", sim.Options{Scheme: switching.Hare, Speculative: true, MemPolicy: gpumem.Belady}},
		{"hostaware", sim.Options{Scheme: switching.Hare, Speculative: true, HostAwareSync: true}},
		// Order-global accounting: these must take the serial
		// fallback and still match exactly.
		{"jitter-fallback", sim.Options{Scheme: switching.Hare, Speculative: true, JitterFrac: 0.05, Seed: 9}},
		{"utilbins-fallback", sim.Options{Scheme: switching.Hare, Speculative: true, UtilBins: 16}},
		{"faults-fallback", sim.Options{Scheme: switching.Hare, Speculative: true,
			Faults: &faults.Plan{Rate: 0.1, Seed: 7}}},
	}
	for _, c := range cases {
		serial, err := sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, c.opts)
		if err != nil {
			t.Fatalf("%s: serial: %v", c.name, err)
		}
		spec, err := sim.RunReference(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, c.opts)
		if err != nil {
			t.Fatalf("%s: reference: %v", c.name, err)
		}
		popts := c.opts
		popts.Parallel = 4
		sharded, err := sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, popts)
		if err != nil {
			t.Fatalf("%s: sharded: %v", c.name, err)
		}
		if !reflect.DeepEqual(sharded, serial) {
			t.Fatalf("%s: sharded result diverged from serial Run\n got WJCT %.17g hash %#x\nwant WJCT %.17g hash %#x",
				c.name, sharded.WeightedJCT, shardedTraceHash(sharded.Trace),
				serial.WeightedJCT, shardedTraceHash(serial.Trace))
		}
		if !reflect.DeepEqual(sharded, spec) {
			t.Fatalf("%s: sharded result diverged from RunReference", c.name)
		}
	}
}

// Golden values for the seed-42 default tenants trace (4 tenants ×
// 12 jobs on 4 × 8 GPUs) under Hare fast switching with speculative
// memory, captured from the serial engine at the introduction of
// sharded replay. Serial, sharded, and reference paths must all keep
// reproducing them exactly.
const (
	goldenTenantsWJCT = 29751.866199876193
	goldenTenantsHash = 0x63c9273f7f2c732c
)

func TestShardedGoldenSeed42(t *testing.T) {
	tr := buildTenantsTrace(t, tenants.Config{})
	opts := sim.Options{Scheme: switching.Hare, Speculative: true}
	runs := []struct {
		name string
		run  func() (*sim.Result, error)
	}{
		{"serial", func() (*sim.Result, error) {
			return sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, opts)
		}},
		{"sharded", func() (*sim.Result, error) {
			o := opts
			o.Parallel = 4
			return sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, o)
		}},
		{"reference", func() (*sim.Result, error) {
			return sim.RunReference(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, opts)
		}},
	}
	for _, r := range runs {
		res, err := r.run()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if res.WeightedJCT != goldenTenantsWJCT {
			t.Errorf("%s: weighted JCT %.17g, golden %.17g", r.name, res.WeightedJCT, goldenTenantsWJCT)
		}
		if h := shardedTraceHash(res.Trace); h != goldenTenantsHash {
			t.Errorf("%s: trace hash %#x, golden %#x", r.name, h, goldenTenantsHash)
		}
	}
}

// TestShardedErrorMatchesSerial corrupts the schedule and checks the
// Parallel path surfaces the identical validation error the serial
// path derives (the sharded attempt falls back before replaying).
func TestShardedErrorMatchesSerial(t *testing.T) {
	tr := buildTenantsTrace(t, tenants.Config{
		Tenants: 2, JobsPerTenant: 3, GPUsPerTenant: 4, RoundsScale: 0.05, Seed: 5,
	})
	// Drop one placement: the schedule no longer covers every task.
	//lint:ordered deleting a single arbitrary key; which one does not matter for the error class
	for tref := range tr.Schedule.Placements {
		delete(tr.Schedule.Placements, tref)
		break
	}
	opts := sim.Options{Scheme: switching.Hare}
	_, serialErr := sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, opts)
	opts.Parallel = 4
	_, shardedErr := sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, opts)
	if serialErr == nil || shardedErr == nil {
		t.Fatalf("expected validation errors, got serial=%v sharded=%v", serialErr, shardedErr)
	}
	if serialErr.Error() != shardedErr.Error() {
		t.Fatalf("error mismatch:\nserial:  %v\nsharded: %v", serialErr, shardedErr)
	}
}

// TestShardedSpeedup measures the wall-clock win on a wider trace.
// It only runs on hosts with enough parallelism to make the
// comparison meaningful; the CI benchmark job tracks the ratio on
// reference hardware.
func TestShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d < 4; sharded speedup needs real parallelism", runtime.GOMAXPROCS(0))
	}
	tr := buildTenantsTrace(t, tenants.Config{
		Tenants: 8, JobsPerTenant: 24, GPUsPerTenant: 8, RoundsScale: 0.4, Seed: 42,
	})
	opts := sim.Options{Scheme: switching.Hare, Speculative: true}
	measure := func(o sim.Options) (time.Duration, *sim.Result) {
		best := time.Duration(1<<63 - 1)
		var res *sim.Result
		for i := 0; i < 3; i++ {
			start := time.Now() //lint:allow walltime measuring real replay wall time, not simulated time
			r, err := sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, o)
			//lint:allow walltime measuring real replay wall time, not simulated time
			if d := time.Since(start); d < best {
				best = d
			}
			if err != nil {
				t.Fatal(err)
			}
			res = r
		}
		return best, res
	}
	serialT, serialRes := measure(opts)
	popts := opts
	popts.Parallel = -1
	shardedT, shardedRes := measure(popts)
	if !reflect.DeepEqual(serialRes, shardedRes) {
		t.Fatal("sharded result diverged from serial on the speedup trace")
	}
	speedup := float64(serialT) / float64(shardedT)
	t.Logf("serial %v, sharded %v, speedup %.2fx", serialT, shardedT, speedup)
	if speedup < 1.5 {
		t.Errorf("sharded replay speedup %.2fx below 1.5x on %d-way host",
			speedup, runtime.GOMAXPROCS(0))
	}
}
