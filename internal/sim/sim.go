// Package sim is the trace-driven discrete-event simulator (paper
// §7.1): it replays a scheduler's per-GPU task sequences on a modeled
// cluster, realizing task times (optionally jittered, as measured in
// Fig. 11), enforcing the relaxed scale-fixed round barriers, and
// charging task-switching overhead according to the selected scheme —
// including Hare's speculative memory residency.
//
// The executor semantics match the paper's: each GPU consumes its
// received task sequence in order; a task starts once the GPU is free
// (plus any switching stall), its job has arrived, and every task of
// the previous round has completed (training + synchronization).
// Planned start times in the schedule are advisory only.
//
// Three execution paths share one replay core:
//
//   - Run, the default entry point, replays on a pooled Simulator —
//     all run state (executor lanes, barrier tables, candidate heap,
//     switching memo, fault scratch) is reused across runs, so a
//     steady-state replay allocates close to nothing beyond its
//     returned Result. With Options.Parallel it additionally shards
//     independent GPU/job components across goroutines and merges
//     their traces deterministically (see sharded.go).
//   - Simulator.Run exposes the pooled engine directly for callers
//     that replay in a tight loop and can treat the Result as
//     borrowed until the next Run.
//   - RunReference keeps the original O(tasks·GPUs) full-rescan loop
//     as an executable specification; TestRunMatchesReference pins
//     all paths to byte-identical results. See docs/PERFORMANCE.md.
package sim

import (
	"fmt"
	"math"
	"sync"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/faults"
	"hare/internal/gpumem"
	"hare/internal/model"
	"hare/internal/obs"
	"hare/internal/obs/perf"
	"hare/internal/sched"
	"hare/internal/stats"
	"hare/internal/switching"
	"hare/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	// Scheme selects the task-switching cost model. Ignored when the
	// run has no cluster/model information.
	Scheme switching.Scheme
	// DisableSwitching zeroes all switching overhead (pure plan
	// replay); used to validate plans and by scheduler-only studies.
	DisableSwitching bool
	// Speculative enables Hare's speculative memory manager; only
	// meaningful with Scheme == switching.Hare.
	Speculative bool
	// MemPolicy selects the speculative manager's eviction policy
	// (the paper's KeepLatest heuristic by default).
	MemPolicy gpumem.Policy
	// JitterFrac perturbs each realized train/sync time by ±frac
	// (Fig. 11 measures ~2–3 % round-to-round variance). 0 disables.
	JitterFrac float64
	// Seed drives the jitter stream.
	Seed int64
	// UtilBins, when > 0, records a per-GPU utilization time series
	// with this many bins over the makespan.
	UtilBins int
	// HostAwareSync scales a task's realized synchronization time
	// down when it runs on the same host as its job's parameter
	// server (placed with the job's first executed task): same-host
	// gradient exchange uses IntraHostBps instead of the data-center
	// network. Requires a cluster.
	HostAwareSync bool
	// Faults is the failure plan to replay (see internal/faults): a
	// transient per-attempt fault rate (each lost attempt re-runs from
	// the round checkpoint, charging its full training time),
	// per-GPU straggler factors, and permanent GPU failures. The
	// transient streams are per-GPU and positional, so a given
	// (rate, seed) loses the same attempts here, on the in-process
	// testbed, and on the distributed control plane.
	Faults *faults.Plan
	// Replanner re-runs the scheduling algorithm on the residual
	// instance (remaining tasks × surviving GPUs) after a permanent
	// GPU failure. Defaults to Algorithm 1 (sched.NewHare()). Only
	// consulted when Faults contains fail=/crash= entries.
	Replanner sched.Algorithm
	// Parallel, when > 1 (or < 0, meaning GOMAXPROCS), lets Run
	// partition the replay into independent GPU/job components and
	// replay them concurrently. The merged result is byte-identical
	// to a serial run; schedules that do not decompose, or option
	// sets whose accounting is order-global (jitter, faults,
	// utilization series, recorders/metrics), silently fall back to
	// the serial engine. 0 and 1 mean serial.
	Parallel int
	// Recorder receives structured events (task start/finish, barrier
	// waits, inter-job switches with stall breakdown, gpumem traffic).
	// nil — the default — keeps the replay loop uninstrumented; see
	// BenchmarkObsDisabled for the zero-overhead guarantee.
	Recorder *obs.Recorder
	// Metrics, when set, accumulates run counters (tasks, switches,
	// stall seconds, residency hits, barrier-wait seconds) plus
	// hare_sim_heap_*_total operation counts from the ready heap.
	Metrics *obs.Registry
	// Phases, when set, times the run's own machinery — validation and
	// state construction ("sim_setup") and the incremental replay loop
	// ("sim_event_loop") — into hare_perf_phase_seconds. The clock is
	// read inside the perf package, never here, keeping this package
	// wall-time free; a nil recorder costs two nil checks per Run.
	Phases *perf.PhaseRecorder
}

// Result summarizes one simulation run.
type Result struct {
	Trace         *trace.Trace
	JobCompletion []float64 // realized C_n per job
	WeightedJCT   float64   // Σ w_n·C_n
	Makespan      float64
	// TotalSwitch is the summed switching stall, SwitchCount the
	// number of inter-job switches.
	TotalSwitch float64
	SwitchCount int
	// ResidencyHits counts switches skipped by speculative memory.
	ResidencyHits int
	// BusySeconds is per-GPU training time; OverheadSeconds is
	// per-GPU switching time.
	BusySeconds     []float64
	OverheadSeconds []float64
	// Utilization is BusySeconds / Makespan per GPU.
	Utilization []float64
	// UtilSeries, when requested, is [gpu][bin] busy fraction.
	UtilSeries [][]float64
	// Retries counts training attempts lost to injected transient
	// faults; LostSeconds is the GPU time those attempts burned.
	Retries     int
	LostSeconds float64
	// GPUFailures counts permanent failures applied; FailedGPUs lists
	// the dead GPUs; Reschedules the recovery re-plans; TasksMigrated
	// the stranded tasks moved to survivors.
	GPUFailures   int
	FailedGPUs    []int
	Reschedules   int
	TasksMigrated int
}

// MeanUtilization averages Utilization across GPUs.
func (r *Result) MeanUtilization() float64 { return stats.Mean(r.Utilization) }

// Clone deep-copies a Result, detaching it from any pooled Simulator
// that owns the original's storage. Nil-ness of the optional slices
// (UtilSeries, FailedGPUs) is preserved so a cloned result stays
// deep-equal to a freshly built one.
func (r *Result) Clone() *Result {
	out := *r
	if r.Trace != nil {
		out.Trace = &trace.Trace{Records: append([]trace.TaskRecord(nil), r.Trace.Records...)}
	}
	out.JobCompletion = append([]float64(nil), r.JobCompletion...)
	out.BusySeconds = append([]float64(nil), r.BusySeconds...)
	out.OverheadSeconds = append([]float64(nil), r.OverheadSeconds...)
	out.Utilization = append([]float64(nil), r.Utilization...)
	if r.UtilSeries != nil {
		out.UtilSeries = make([][]float64, len(r.UtilSeries))
		for i, s := range r.UtilSeries {
			out.UtilSeries[i] = append([]float64(nil), s...)
		}
	}
	if r.FailedGPUs != nil {
		out.FailedGPUs = append([]int(nil), r.FailedGPUs...)
	}
	return &out
}

type gpuState struct {
	seq     []core.TaskRef
	next    int
	free    float64    // when the GPU finishes its current training
	prevJob core.JobID // job of the last task run (-1 initially)
	mem     *gpumem.Manager
	busy    []interval // training intervals, for utilization
	over    []interval // switching intervals
}

type interval struct{ from, to float64 }

// roundWaker receives the round-completion hook: roundDone fires after
// the last task of (job, round) completes — the instant the round's
// barrier value becomes final. The incremental engine implements it to
// wake GPUs whose head task was blocked on that round. An interface
// (rather than a closure) keeps the pooled hookup allocation-free.
type roundWaker interface {
	roundDone(job core.JobID, round int)
}

// replay is the state shared by every replay engine: the validated
// inputs, per-GPU executor state, round-barrier bookkeeping, and the
// accumulating Result. Selection strategy is the only thing the
// engines disagree on; execution accounting (exec) is common, so the
// realized times, events, and counters cannot drift apart.
//
// All state is held in capacity-reusing slices and reset by init, so
// a pooled owner replays schedule after schedule without reallocating;
// newReplay builds the same state on a fresh value for the one-shot
// reference engine.
type replay struct {
	in            *core.Instance
	cl            *cluster.Cluster
	models        []*model.Model
	opts          Options
	withSwitching bool

	rng      *stats.RNG
	rec      *obs.Recorder
	observed bool

	// Transient-fault state: per-GPU positional streams (so dispatch
	// order can't change how many attempts a GPU loses) and straggler
	// factors. faultRate == 0 leaves the replay byte-identical to a
	// fault-free run — no stream is ever consulted.
	faultRate float64
	faultRNG  []*stats.RNG
	slows     []float64

	cTasks, cSwitches, cStall, cHits, cWait, cTrain *obs.Counter
	cRetries, cLost, cFailures, cMigrated, cResched *obs.Counter

	gpus []gpuState
	// mems backs the per-GPU speculative memory managers by value;
	// gpus[m].mem points into it when speculation is on.
	mems []gpumem.Manager
	// lookBuf is the scratch lookahead order handed to SetLookahead
	// (which copies what it needs).
	lookBuf []gpumem.JobKey

	// Barrier bookkeeping, flattened: job j's rounds occupy
	// [roundOff[j], roundOff[j+1]) in remaining and roundEnd. One
	// backing array instead of two slices per job keeps million-job
	// setups O(1) allocations.
	roundOff  []int
	remaining []int
	roundEnd  []float64
	// psHost anchors each job's parameter server to the host of its
	// first executed task (host-aware sync); -1 while unanchored.
	psHost []int

	res      Result
	traceOwn trace.Trace
	pending  int

	// waker, when set, is the round-completion hook (see roundWaker).
	waker roundWaker
}

// growZero returns s with length n and every element zeroed, reusing
// capacity when possible.
func growZero[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growCap returns s emptied with capacity at least n.
func growCap[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, 0, n)
	}
	return s[:0]
}

// init validates the inputs and (re)builds the full replay state in
// place, reusing any storage a previous run left behind. seqBuf, when
// non-nil, receives the derived per-GPU sequences (the pooled path);
// a nil seqBuf derives them with fresh storage. Both engines and the
// pool construct state through this one path, so they cannot drift.
func (r *replay) init(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options, seqBuf *core.SeqBuffer) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if err := core.ValidatePlacements(in, sch); err != nil {
		return fmt.Errorf("sim: invalid plan: %w", err)
	}
	if cl != nil && cl.Size() != in.NumGPUs {
		return fmt.Errorf("sim: cluster has %d GPUs, instance %d", cl.Size(), in.NumGPUs)
	}
	if models != nil && len(models) != len(in.Jobs) {
		return fmt.Errorf("sim: %d models for %d jobs", len(models), len(in.Jobs))
	}
	if err := opts.Faults.Validate(in.NumGPUs); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	var seqs [][]core.TaskRef
	if seqBuf != nil {
		seqs = sch.SequencesInto(seqBuf, in.NumGPUs)
	} else {
		seqs = sch.Sequences(in.NumGPUs)
	}
	if err := core.ValidateScheduleSeqs(in, sch, seqs); err != nil {
		return fmt.Errorf("sim: invalid plan: %w", err)
	}

	r.in, r.cl, r.models, r.opts = in, cl, models, opts
	r.withSwitching = cl != nil && models != nil && !opts.DisableSwitching
	if r.rng == nil {
		r.rng = stats.New(opts.Seed)
	} else {
		r.rng.Reseed(opts.Seed)
	}
	r.rec = opts.Recorder
	r.observed = opts.Recorder.Enabled()
	// Counters are resolved once up front; on a nil registry they
	// are nil and every Add is a no-op.
	r.cTasks = opts.Metrics.Counter("hare_sim_tasks_total")
	r.cSwitches = opts.Metrics.Counter("hare_sim_switches_total")
	r.cStall = opts.Metrics.Counter("hare_sim_switch_stall_seconds_total")
	r.cHits = opts.Metrics.Counter("hare_sim_residency_hits_total")
	r.cWait = opts.Metrics.Counter("hare_sim_barrier_wait_seconds_total")
	r.cTrain = opts.Metrics.Counter("hare_sim_train_seconds_total")
	r.cRetries = opts.Metrics.Counter("hare_sim_faults_injected_total")
	r.cLost = opts.Metrics.Counter("hare_sim_fault_lost_seconds_total")
	r.cFailures = opts.Metrics.Counter("hare_sim_gpu_failures_total")
	r.cMigrated = opts.Metrics.Counter("hare_sim_tasks_migrated_total")
	r.cResched = opts.Metrics.Counter("hare_sim_reschedules_total")
	r.pending = in.NumTasks()
	r.waker = nil

	r.faultRate = opts.Faults.TransientRate()
	if r.faultRate > 0 {
		if cap(r.faultRNG) < in.NumGPUs {
			r.faultRNG = append(r.faultRNG[:cap(r.faultRNG)], make([]*stats.RNG, in.NumGPUs-cap(r.faultRNG))...)
		}
		r.faultRNG = r.faultRNG[:in.NumGPUs]
		for m := range r.faultRNG {
			seed := faults.RetrySeed(opts.Faults.TransientSeed(), m)
			if r.faultRNG[m] == nil {
				r.faultRNG[m] = stats.New(seed)
			} else {
				r.faultRNG[m].Reseed(seed)
			}
		}
	} else {
		r.faultRNG = r.faultRNG[:0]
	}
	r.slows = nil
	if opts.Faults != nil && len(opts.Faults.Stragglers) > 0 {
		r.slows = growZero(r.slows, in.NumGPUs)
		for m := range r.slows {
			r.slows[m] = opts.Faults.SlowdownOf(m)
		}
	}

	if cap(r.gpus) < in.NumGPUs {
		r.gpus = make([]gpuState, in.NumGPUs)
	} else {
		r.gpus = r.gpus[:in.NumGPUs]
	}
	speculate := r.withSwitching && opts.Speculative
	if speculate {
		if cap(r.mems) < in.NumGPUs {
			r.mems = make([]gpumem.Manager, in.NumGPUs)
		} else {
			r.mems = r.mems[:in.NumGPUs]
		}
	}
	for m := range r.gpus {
		g := &r.gpus[m]
		seq := seqs[m]
		g.seq, g.next, g.free, g.prevJob = seq, 0, 0, -1
		// Pre-size the interval lanes: a sequence of k tasks appends at
		// most k busy and k switch intervals.
		g.busy = growCap(g.busy, len(seq))
		g.over = growCap(g.over, len(seq))
		g.mem = nil
		if speculate {
			mem := &r.mems[m]
			mem.Reset(cl.GPUs[m].Type.MemBytes)
			mem.SetPolicy(opts.MemPolicy)
			mem.SetRecorder(opts.Recorder, m)
			r.lookBuf = growCap(r.lookBuf, len(seq))
			for _, t := range seq {
				r.lookBuf = append(r.lookBuf, gpumem.JobKey(t.Job))
			}
			mem.SetLookahead(r.lookBuf)
			g.mem = mem
		}
	}

	totalRounds := 0
	r.roundOff = growCap(r.roundOff, len(in.Jobs)+1)
	for _, j := range in.Jobs {
		r.roundOff = append(r.roundOff, totalRounds)
		totalRounds += j.Rounds
	}
	r.roundOff = append(r.roundOff, totalRounds)
	r.remaining = growZero(r.remaining, totalRounds)
	r.roundEnd = growZero(r.roundEnd, totalRounds)
	for _, j := range in.Jobs {
		off := r.roundOff[j.ID]
		for rd := 0; rd < j.Rounds; rd++ {
			r.remaining[off+rd] = j.Scale
		}
	}
	r.psHost = growZero(r.psHost, len(in.Jobs))
	for j := range r.psHost {
		r.psHost[j] = -1
	}

	// The Result reuses its per-job/per-GPU slices; the optional
	// UtilSeries and FailedGPUs start nil (not empty) so results match
	// a freshly allocated run's deep-equality shape.
	jc := growZero(r.res.JobCompletion, len(in.Jobs))
	busy := growZero(r.res.BusySeconds, in.NumGPUs)
	over := growZero(r.res.OverheadSeconds, in.NumGPUs)
	util := growZero(r.res.Utilization, in.NumGPUs)
	r.traceOwn.Records = growCap(r.traceOwn.Records, in.NumTasks())
	r.res = Result{
		Trace:           &r.traceOwn,
		JobCompletion:   jc,
		BusySeconds:     busy,
		OverheadSeconds: over,
		Utilization:     util,
	}
	return nil
}

// release drops references to the caller-owned inputs so a pooled
// replay does not pin them between runs; scratch storage is kept.
func (r *replay) release() {
	r.in, r.cl, r.models = nil, nil, nil
	r.opts = Options{}
	r.rec, r.waker = nil, nil
	r.cTasks, r.cSwitches, r.cStall, r.cHits, r.cWait, r.cTrain = nil, nil, nil, nil, nil, nil
	r.cRetries, r.cLost, r.cFailures, r.cMigrated, r.cResched = nil, nil, nil, nil, nil
	for m := range r.gpus {
		r.gpus[m].seq = nil
	}
}

func newReplay(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options) (*replay, error) {
	r := new(replay)
	if err := r.init(in, sch, cl, models, opts, nil); err != nil {
		return nil, err
	}
	return r, nil
}

// barrierOf returns the earliest time the given task may start due to
// its job's arrival and previous-round barrier, or ok=false while the
// previous round is incomplete (its barrier value is not final yet).
func (r *replay) barrierOf(t core.TaskRef) (float64, bool) {
	if t.Round == 0 {
		return r.in.Jobs[t.Job].Arrival, true
	}
	prev := r.roundOff[t.Job] + t.Round - 1
	if r.remaining[prev] > 0 {
		return 0, false
	}
	return math.Max(r.roundEnd[prev], r.in.Jobs[t.Job].Arrival), true
}

// exec runs the chosen GPU's head task with the pre-computed start
// and switching stall, and performs all accounting: realized times,
// events, counters, barrier bookkeeping, trace. Both engines call it
// with identical arguments in the identical order, which is what
// makes their outputs byte-identical.
func (r *replay) exec(bestGPU int, bestStart, bestSwitch float64, bestHit bool, bestB switching.Breakdown) {
	g := &r.gpus[bestGPU]
	t := g.seq[g.next]
	g.next++
	r.pending--

	train := r.in.Train[t.Job][bestGPU]
	syncT := r.in.Sync[t.Job][bestGPU]
	if r.opts.HostAwareSync && r.cl != nil && r.cl.IntraHostBps > 0 {
		host := r.cl.GPUs[bestGPU].Host
		if h := r.psHost[t.Job]; h < 0 {
			// The job's first executed task anchors its PS.
			r.psHost[t.Job] = host
			syncT *= r.cl.NetworkBps / r.cl.IntraHostBps
		} else if h == host {
			syncT *= r.cl.NetworkBps / r.cl.IntraHostBps
		}
	}
	if r.opts.JitterFrac > 0 {
		train = r.rng.Jitter(train, r.opts.JitterFrac)
		syncT = r.rng.Jitter(syncT, r.opts.JitterFrac)
	}
	if r.slows != nil {
		train *= r.slows[bestGPU]
	}
	// Transient faults: each attempt is lost with probability
	// faultRate and re-runs from the round checkpoint, so the task
	// occupies the GPU for (retries+1) training times. The stream is
	// per-GPU and consumed greedily (draw until first success), so the
	// loss pattern depends only on how many tasks the GPU has run —
	// matching the testbed's executors attempt for attempt.
	retries := 0
	if r.faultRate > 0 {
		for r.faultRNG[bestGPU].Float64() < r.faultRate {
			retries++
		}
	}
	start := bestStart
	total := train * float64(retries+1)
	trainEnd := start + total
	end := trainEnd + syncT
	if retries > 0 {
		r.res.Retries += retries
		r.res.LostSeconds += train * float64(retries)
		r.cRetries.Add(float64(retries))
		r.cLost.Add(train * float64(retries))
		if r.observed {
			for a := 1; a <= retries; a++ {
				r.rec.Emit(obs.Event{
					Type: obs.EvFaultInjected, Time: start + train*float64(a), GPU: bestGPU,
					Job: int(t.Job), Round: t.Round, Index: t.Index, Dur: train,
				})
			}
		}
	}

	// Idle time beyond the GPU's readiness (and the switch stall)
	// is waiting on the job: its previous round's barrier, or its
	// arrival — the stall relaxed scale-fixed sync exists to shrink.
	if wait := start - bestSwitch - g.free; wait > 0 {
		r.cWait.Add(wait)
		if r.observed {
			reason := "round"
			if t.Round == 0 {
				reason = "arrival"
			}
			r.rec.Emit(obs.Event{
				Type: obs.EvBarrierWait, Time: g.free, GPU: bestGPU,
				Job: int(t.Job), Round: t.Round, Index: t.Index,
				Dur: wait, Note: reason,
			})
		}
	}
	if bestSwitch > 0 {
		g.over = append(g.over, interval{start - bestSwitch, start})
		r.res.OverheadSeconds[bestGPU] += bestSwitch
		r.res.TotalSwitch += bestSwitch
		r.res.SwitchCount++
		r.cSwitches.Inc()
		r.cStall.Add(bestSwitch)
		if bestHit {
			r.res.ResidencyHits++
			r.cHits.Inc()
		}
		if r.observed {
			r.rec.Emit(obs.Event{
				Type: obs.EvJobSwitch, Time: start - bestSwitch, GPU: bestGPU,
				Job: int(t.Job), From: int(g.prevJob), Dur: bestSwitch,
				Clean: bestB.Clean, Context: bestB.Context, Init: bestB.Init,
				Transfer: bestB.Transfer, Hit: bestHit,
			})
		}
	}
	if r.observed {
		r.rec.Emit(obs.Event{
			Type: obs.EvTaskStart, Time: start, GPU: bestGPU,
			Job: int(t.Job), Round: t.Round, Index: t.Index,
		})
	}
	if g.mem != nil {
		md := r.models[t.Job]
		g.mem.BeginAt(gpumem.JobKey(t.Job), md.TrainFootprintBytes, start)
		g.mem.Complete(gpumem.JobKey(t.Job), md.ParamBytes, trainEnd)
	}
	g.busy = append(g.busy, interval{start, trainEnd})
	r.res.BusySeconds[bestGPU] += total
	r.cTasks.Inc()
	r.cTrain.Add(total)
	if r.observed {
		r.rec.Emit(obs.Event{
			Type: obs.EvTaskFinish, Time: end, GPU: bestGPU,
			Job: int(t.Job), Round: t.Round, Index: t.Index,
			Dur: end - start, Train: total, Sync: syncT,
			Note: r.in.Jobs[t.Job].Model,
		})
	}
	g.free = trainEnd
	g.prevJob = t.Job

	slot := r.roundOff[t.Job] + t.Round
	r.remaining[slot]--
	if end > r.roundEnd[slot] {
		r.roundEnd[slot] = end
	}
	if end > r.res.JobCompletion[t.Job] {
		r.res.JobCompletion[t.Job] = end
	}
	if end > r.res.Makespan {
		r.res.Makespan = end
	}
	r.res.Trace.Add(trace.TaskRecord{
		Task: t, GPU: bestGPU, Start: start,
		Train: total, Sync: syncT, Switch: bestSwitch,
	})
	if r.remaining[slot] == 0 && r.waker != nil {
		r.waker.roundDone(t.Job, t.Round)
	}
}

// finish derives the aggregate metrics once every task has run.
func (r *replay) finish() *Result {
	res := &r.res
	for j, c := range res.JobCompletion {
		res.WeightedJCT += r.in.Jobs[j].Weight * c
	}
	if res.Makespan > 0 {
		for m := range res.Utilization {
			res.Utilization[m] = res.BusySeconds[m] / res.Makespan
		}
	}
	if r.opts.UtilBins > 0 && res.Makespan > 0 {
		res.UtilSeries = make([][]float64, r.in.NumGPUs)
		for m := range r.gpus {
			res.UtilSeries[m] = binIntervals(r.gpus[m].busy, res.Makespan, r.opts.UtilBins)
		}
	}
	return res
}

// candidate caches one GPU's head-task selection: its feasible start
// and the switching stall it would pay. Valid from the moment it is
// computed until the GPU executes — g.free, g.prevJob and g.mem only
// change on execution, and a released barrier value is final.
type candidate struct {
	start float64
	sw    float64
	hit   bool
	b     switching.Breakdown
}

// simPool recycles Simulators across package-level Run calls, so every
// caller — the experiment engine above all — reuses the replay arenas
// without holding a Simulator itself.
var simPool = sync.Pool{New: func() any { return NewSimulator() }}

// Run replays the schedule. cl and models may be nil, in which case
// switching costs are zero; otherwise models[j] must name job j's
// model for switching and memory accounting.
//
// The replay executes on a pooled Simulator; the returned Result is
// freshly allocated and owned by the caller. With Options.Parallel,
// decomposable schedules replay as concurrent shards (see sharded.go)
// with a deterministically merged, byte-identical result.
func Run(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options) (*Result, error) {
	if workers := shardWorkers(opts); workers > 1 {
		if res, err, handled := runSharded(in, sch, cl, models, opts, workers); handled {
			return res, err
		}
	}
	s := simPool.Get().(*Simulator)
	res, err := s.Run(in, sch, cl, models, opts)
	if err == nil {
		res = res.Clone()
	}
	s.release()
	simPool.Put(s)
	return res, err
}

// binIntervals converts busy intervals into a busy-fraction series of
// n bins over [0, horizon].
func binIntervals(ivs []interval, horizon float64, n int) []float64 {
	out := make([]float64, n)
	w := horizon / float64(n)
	for _, iv := range ivs {
		if iv.to <= 0 || iv.from >= horizon {
			continue
		}
		lo := int(iv.from / w)
		if lo < 0 {
			lo = 0
		}
		hi := int(iv.to / w)
		for b := lo; b <= hi && b < n; b++ {
			bs, be := float64(b)*w, float64(b+1)*w
			overlap := math.Min(iv.to, be) - math.Max(iv.from, bs)
			if overlap > 0 {
				out[b] += overlap / w
			}
		}
	}
	for b := range out {
		if out[b] > 1 {
			out[b] = 1
		}
	}
	return out
}
