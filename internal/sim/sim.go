// Package sim is the trace-driven discrete-event simulator (paper
// §7.1): it replays a scheduler's per-GPU task sequences on a modeled
// cluster, realizing task times (optionally jittered, as measured in
// Fig. 11), enforcing the relaxed scale-fixed round barriers, and
// charging task-switching overhead according to the selected scheme —
// including Hare's speculative memory residency.
//
// The executor semantics match the paper's: each GPU consumes its
// received task sequence in order; a task starts once the GPU is free
// (plus any switching stall), its job has arrived, and every task of
// the previous round has completed (training + synchronization).
// Planned start times in the schedule are advisory only.
package sim

import (
	"fmt"
	"math"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/gpumem"
	"hare/internal/model"
	"hare/internal/obs"
	"hare/internal/stats"
	"hare/internal/switching"
	"hare/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	// Scheme selects the task-switching cost model. Ignored when the
	// run has no cluster/model information.
	Scheme switching.Scheme
	// DisableSwitching zeroes all switching overhead (pure plan
	// replay); used to validate plans and by scheduler-only studies.
	DisableSwitching bool
	// Speculative enables Hare's speculative memory manager; only
	// meaningful with Scheme == switching.Hare.
	Speculative bool
	// MemPolicy selects the speculative manager's eviction policy
	// (the paper's KeepLatest heuristic by default).
	MemPolicy gpumem.Policy
	// JitterFrac perturbs each realized train/sync time by ±frac
	// (Fig. 11 measures ~2–3 % round-to-round variance). 0 disables.
	JitterFrac float64
	// Seed drives the jitter stream.
	Seed int64
	// UtilBins, when > 0, records a per-GPU utilization time series
	// with this many bins over the makespan.
	UtilBins int
	// HostAwareSync scales a task's realized synchronization time
	// down when it runs on the same host as its job's parameter
	// server (placed with the job's first executed task): same-host
	// gradient exchange uses IntraHostBps instead of the data-center
	// network. Requires a cluster.
	HostAwareSync bool
	// Recorder receives structured events (task start/finish, barrier
	// waits, inter-job switches with stall breakdown, gpumem traffic).
	// nil — the default — keeps the replay loop uninstrumented; see
	// BenchmarkObsDisabled for the zero-overhead guarantee.
	Recorder *obs.Recorder
	// Metrics, when set, accumulates run counters (tasks, switches,
	// stall seconds, residency hits, barrier-wait seconds).
	Metrics *obs.Registry
}

// Result summarizes one simulation run.
type Result struct {
	Trace         *trace.Trace
	JobCompletion []float64 // realized C_n per job
	WeightedJCT   float64   // Σ w_n·C_n
	Makespan      float64
	// TotalSwitch is the summed switching stall, SwitchCount the
	// number of inter-job switches.
	TotalSwitch float64
	SwitchCount int
	// ResidencyHits counts switches skipped by speculative memory.
	ResidencyHits int
	// BusySeconds is per-GPU training time; OverheadSeconds is
	// per-GPU switching time.
	BusySeconds     []float64
	OverheadSeconds []float64
	// Utilization is BusySeconds / Makespan per GPU.
	Utilization []float64
	// UtilSeries, when requested, is [gpu][bin] busy fraction.
	UtilSeries [][]float64
}

// MeanUtilization averages Utilization across GPUs.
func (r *Result) MeanUtilization() float64 { return stats.Mean(r.Utilization) }

type gpuState struct {
	seq     []core.TaskRef
	next    int
	free    float64    // when the GPU finishes its current training
	prevJob core.JobID // job of the last task run (-1 initially)
	mem     *gpumem.Manager
	busy    []interval // training intervals, for utilization
	over    []interval // switching intervals
}

type interval struct{ from, to float64 }

// Run replays the schedule. cl and models may be nil, in which case
// switching costs are zero; otherwise models[j] must name job j's
// model for switching and memory accounting.
func Run(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.ValidateSchedule(in, sch); err != nil {
		return nil, fmt.Errorf("sim: invalid plan: %w", err)
	}
	if cl != nil && cl.Size() != in.NumGPUs {
		return nil, fmt.Errorf("sim: cluster has %d GPUs, instance %d", cl.Size(), in.NumGPUs)
	}
	if models != nil && len(models) != len(in.Jobs) {
		return nil, fmt.Errorf("sim: %d models for %d jobs", len(models), len(in.Jobs))
	}
	withSwitching := cl != nil && models != nil && !opts.DisableSwitching

	rng := stats.New(opts.Seed)
	rec := opts.Recorder
	observed := rec.Enabled()
	// Counters are resolved once up front; on a nil registry they are
	// nil and every Add is a no-op.
	var (
		cTasks    = opts.Metrics.Counter("hare_sim_tasks_total")
		cSwitches = opts.Metrics.Counter("hare_sim_switches_total")
		cStall    = opts.Metrics.Counter("hare_sim_switch_stall_seconds_total")
		cHits     = opts.Metrics.Counter("hare_sim_residency_hits_total")
		cWait     = opts.Metrics.Counter("hare_sim_barrier_wait_seconds_total")
		cTrain    = opts.Metrics.Counter("hare_sim_train_seconds_total")
	)
	gpus := make([]*gpuState, in.NumGPUs)
	for m, seq := range sch.Sequences(in.NumGPUs) {
		gpus[m] = &gpuState{seq: seq, prevJob: -1}
		if withSwitching && opts.Speculative {
			gpus[m].mem = gpumem.NewManager(cl.GPUs[m].Type.MemBytes)
			gpus[m].mem.SetPolicy(opts.MemPolicy)
			gpus[m].mem.SetRecorder(rec, m)
			look := make([]gpumem.JobKey, len(seq))
			for i, t := range seq {
				look[i] = gpumem.JobKey(t.Job)
			}
			gpus[m].mem.SetLookahead(look)
		}
	}

	// Barrier bookkeeping: remaining tasks and realized end per round.
	remaining := make([][]int, len(in.Jobs))
	roundEnd := make([][]float64, len(in.Jobs))
	for _, j := range in.Jobs {
		remaining[j.ID] = make([]int, j.Rounds)
		roundEnd[j.ID] = make([]float64, j.Rounds)
		for r := range remaining[j.ID] {
			remaining[j.ID][r] = j.Scale
		}
	}
	barrierOf := func(t core.TaskRef) (float64, bool) {
		if t.Round == 0 {
			return in.Jobs[t.Job].Arrival, true
		}
		if remaining[t.Job][t.Round-1] > 0 {
			return 0, false
		}
		return math.Max(roundEnd[t.Job][t.Round-1], in.Jobs[t.Job].Arrival), true
	}

	res := &Result{
		Trace:           &trace.Trace{},
		JobCompletion:   make([]float64, len(in.Jobs)),
		BusySeconds:     make([]float64, in.NumGPUs),
		OverheadSeconds: make([]float64, in.NumGPUs),
		Utilization:     make([]float64, in.NumGPUs),
	}

	// psHost anchors each job's parameter server to the host of its
	// first executed task (host-aware sync).
	psHost := make(map[core.JobID]int)

	pendingTasks := in.NumTasks()
	for pendingTasks > 0 {
		// Choose the GPU whose head task can start earliest.
		bestGPU := -1
		var bestStart, bestSwitch float64
		var bestHit bool
		var bestB switching.Breakdown
		for m, g := range gpus {
			if g.next >= len(g.seq) {
				continue
			}
			t := g.seq[g.next]
			barrier, ok := barrierOf(t)
			if !ok {
				continue // blocked on an incomplete round
			}
			var sw float64
			var hit bool
			var b switching.Breakdown
			if withSwitching && g.prevJob != t.Job {
				var prev *model.Model
				if g.prevJob >= 0 {
					prev = models[g.prevJob]
				}
				resident := g.mem != nil && g.mem.Resident(gpumem.JobKey(t.Job))
				b = switching.Cost(opts.Scheme, cl.GPUs[m].Type, prev, models[t.Job], resident)
				sw, hit = b.Total(), b.ResidentHit
			}
			start := math.Max(g.free+sw, barrier)
			if bestGPU == -1 || start < bestStart || (start == bestStart && m < bestGPU) {
				bestGPU, bestStart, bestSwitch, bestHit, bestB = m, start, sw, hit, b
			}
		}
		if bestGPU == -1 {
			return nil, fmt.Errorf("sim: deadlock with %d tasks pending (round barrier never satisfied)", pendingTasks)
		}

		g := gpus[bestGPU]
		t := g.seq[g.next]
		g.next++
		pendingTasks--

		train := in.Train[t.Job][bestGPU]
		syncT := in.Sync[t.Job][bestGPU]
		if opts.HostAwareSync && cl != nil && cl.IntraHostBps > 0 {
			host := cl.GPUs[bestGPU].Host
			if h, anchored := psHost[t.Job]; !anchored {
				// The job's first executed task anchors its PS.
				psHost[t.Job] = host
				syncT *= cl.NetworkBps / cl.IntraHostBps
			} else if h == host {
				syncT *= cl.NetworkBps / cl.IntraHostBps
			}
		}
		if opts.JitterFrac > 0 {
			train = rng.Jitter(train, opts.JitterFrac)
			syncT = rng.Jitter(syncT, opts.JitterFrac)
		}
		start := bestStart
		trainEnd := start + train
		end := trainEnd + syncT

		// Idle time beyond the GPU's readiness (and the switch stall)
		// is waiting on the job: its previous round's barrier, or its
		// arrival — the stall relaxed scale-fixed sync exists to shrink.
		if wait := start - bestSwitch - g.free; wait > 0 {
			cWait.Add(wait)
			if observed {
				reason := "round"
				if t.Round == 0 {
					reason = "arrival"
				}
				rec.Emit(obs.Event{
					Type: obs.EvBarrierWait, Time: g.free, GPU: bestGPU,
					Job: int(t.Job), Round: t.Round, Index: t.Index,
					Dur: wait, Note: reason,
				})
			}
		}
		if bestSwitch > 0 {
			g.over = append(g.over, interval{start - bestSwitch, start})
			res.OverheadSeconds[bestGPU] += bestSwitch
			res.TotalSwitch += bestSwitch
			res.SwitchCount++
			cSwitches.Inc()
			cStall.Add(bestSwitch)
			if bestHit {
				res.ResidencyHits++
				cHits.Inc()
			}
			if observed {
				rec.Emit(obs.Event{
					Type: obs.EvJobSwitch, Time: start - bestSwitch, GPU: bestGPU,
					Job: int(t.Job), From: int(g.prevJob), Dur: bestSwitch,
					Clean: bestB.Clean, Context: bestB.Context, Init: bestB.Init,
					Transfer: bestB.Transfer, Hit: bestHit,
				})
			}
		}
		if observed {
			rec.Emit(obs.Event{
				Type: obs.EvTaskStart, Time: start, GPU: bestGPU,
				Job: int(t.Job), Round: t.Round, Index: t.Index,
			})
		}
		if g.mem != nil {
			md := models[t.Job]
			g.mem.BeginAt(gpumem.JobKey(t.Job), md.TrainFootprintBytes, start)
			g.mem.Complete(gpumem.JobKey(t.Job), md.ParamBytes, trainEnd)
		}
		g.busy = append(g.busy, interval{start, trainEnd})
		res.BusySeconds[bestGPU] += train
		cTasks.Inc()
		cTrain.Add(train)
		if observed {
			rec.Emit(obs.Event{
				Type: obs.EvTaskFinish, Time: end, GPU: bestGPU,
				Job: int(t.Job), Round: t.Round, Index: t.Index,
				Dur: end - start, Train: train, Sync: syncT,
				Note: in.Jobs[t.Job].Model,
			})
		}
		g.free = trainEnd
		g.prevJob = t.Job

		remaining[t.Job][t.Round]--
		if end > roundEnd[t.Job][t.Round] {
			roundEnd[t.Job][t.Round] = end
		}
		if end > res.JobCompletion[t.Job] {
			res.JobCompletion[t.Job] = end
		}
		if end > res.Makespan {
			res.Makespan = end
		}
		res.Trace.Add(trace.TaskRecord{
			Task: t, GPU: bestGPU, Start: start,
			Train: train, Sync: syncT, Switch: bestSwitch,
		})
	}

	for j, c := range res.JobCompletion {
		res.WeightedJCT += in.Jobs[j].Weight * c
	}
	if res.Makespan > 0 {
		for m := range res.Utilization {
			res.Utilization[m] = res.BusySeconds[m] / res.Makespan
		}
	}
	if opts.UtilBins > 0 && res.Makespan > 0 {
		res.UtilSeries = make([][]float64, in.NumGPUs)
		for m, g := range gpus {
			res.UtilSeries[m] = binIntervals(g.busy, res.Makespan, opts.UtilBins)
		}
	}
	return res, nil
}

// binIntervals converts busy intervals into a busy-fraction series of
// n bins over [0, horizon].
func binIntervals(ivs []interval, horizon float64, n int) []float64 {
	out := make([]float64, n)
	w := horizon / float64(n)
	for _, iv := range ivs {
		lo := int(iv.from / w)
		hi := int(iv.to / w)
		for b := lo; b <= hi && b < n; b++ {
			if b < 0 {
				continue
			}
			bs, be := float64(b)*w, float64(b+1)*w
			overlap := math.Min(iv.to, be) - math.Max(iv.from, bs)
			if overlap > 0 {
				out[b] += overlap / w
			}
		}
	}
	for b := range out {
		if out[b] > 1 {
			out[b] = 1
		}
	}
	return out
}
