// Package sim is the trace-driven discrete-event simulator (paper
// §7.1): it replays a scheduler's per-GPU task sequences on a modeled
// cluster, realizing task times (optionally jittered, as measured in
// Fig. 11), enforcing the relaxed scale-fixed round barriers, and
// charging task-switching overhead according to the selected scheme —
// including Hare's speculative memory residency.
//
// The executor semantics match the paper's: each GPU consumes its
// received task sequence in order; a task starts once the GPU is free
// (plus any switching stall), its job has arrived, and every task of
// the previous round has completed (training + synchronization).
// Planned start times in the schedule are advisory only.
//
// Run's inner loop is incremental: each GPU's head-task feasible
// start lives in an eventq.IndexedHeap and is recomputed only when an
// event can change it — the GPU executed a task, or the round barrier
// its head was blocked on released. Switching costs are memoized per
// (GPU type, predecessor job, successor job, residency), since those
// are the only inputs of switching.Cost. RunReference keeps the
// original O(tasks·GPUs) full-rescan loop as an executable
// specification; TestRunMatchesReference pins the two engines to
// byte-identical results. See docs/PERFORMANCE.md.
package sim

import (
	"fmt"
	"math"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/eventq"
	"hare/internal/faults"
	"hare/internal/gpumem"
	"hare/internal/model"
	"hare/internal/obs"
	"hare/internal/obs/perf"
	"hare/internal/sched"
	"hare/internal/stats"
	"hare/internal/switching"
	"hare/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	// Scheme selects the task-switching cost model. Ignored when the
	// run has no cluster/model information.
	Scheme switching.Scheme
	// DisableSwitching zeroes all switching overhead (pure plan
	// replay); used to validate plans and by scheduler-only studies.
	DisableSwitching bool
	// Speculative enables Hare's speculative memory manager; only
	// meaningful with Scheme == switching.Hare.
	Speculative bool
	// MemPolicy selects the speculative manager's eviction policy
	// (the paper's KeepLatest heuristic by default).
	MemPolicy gpumem.Policy
	// JitterFrac perturbs each realized train/sync time by ±frac
	// (Fig. 11 measures ~2–3 % round-to-round variance). 0 disables.
	JitterFrac float64
	// Seed drives the jitter stream.
	Seed int64
	// UtilBins, when > 0, records a per-GPU utilization time series
	// with this many bins over the makespan.
	UtilBins int
	// HostAwareSync scales a task's realized synchronization time
	// down when it runs on the same host as its job's parameter
	// server (placed with the job's first executed task): same-host
	// gradient exchange uses IntraHostBps instead of the data-center
	// network. Requires a cluster.
	HostAwareSync bool
	// Faults is the failure plan to replay (see internal/faults): a
	// transient per-attempt fault rate (each lost attempt re-runs from
	// the round checkpoint, charging its full training time),
	// per-GPU straggler factors, and permanent GPU failures. The
	// transient streams are per-GPU and positional, so a given
	// (rate, seed) loses the same attempts here, on the in-process
	// testbed, and on the distributed control plane.
	Faults *faults.Plan
	// Replanner re-runs the scheduling algorithm on the residual
	// instance (remaining tasks × surviving GPUs) after a permanent
	// GPU failure. Defaults to Algorithm 1 (sched.NewHare()). Only
	// consulted when Faults contains fail=/crash= entries.
	Replanner sched.Algorithm
	// Recorder receives structured events (task start/finish, barrier
	// waits, inter-job switches with stall breakdown, gpumem traffic).
	// nil — the default — keeps the replay loop uninstrumented; see
	// BenchmarkObsDisabled for the zero-overhead guarantee.
	Recorder *obs.Recorder
	// Metrics, when set, accumulates run counters (tasks, switches,
	// stall seconds, residency hits, barrier-wait seconds) plus
	// hare_sim_heap_*_total operation counts from the ready heap.
	Metrics *obs.Registry
	// Phases, when set, times the run's own machinery — validation and
	// state construction ("sim_setup") and the incremental replay loop
	// ("sim_event_loop") — into hare_perf_phase_seconds. The clock is
	// read inside the perf package, never here, keeping this package
	// wall-time free; a nil recorder costs two nil checks per Run.
	Phases *perf.PhaseRecorder
}

// Result summarizes one simulation run.
type Result struct {
	Trace         *trace.Trace
	JobCompletion []float64 // realized C_n per job
	WeightedJCT   float64   // Σ w_n·C_n
	Makespan      float64
	// TotalSwitch is the summed switching stall, SwitchCount the
	// number of inter-job switches.
	TotalSwitch float64
	SwitchCount int
	// ResidencyHits counts switches skipped by speculative memory.
	ResidencyHits int
	// BusySeconds is per-GPU training time; OverheadSeconds is
	// per-GPU switching time.
	BusySeconds     []float64
	OverheadSeconds []float64
	// Utilization is BusySeconds / Makespan per GPU.
	Utilization []float64
	// UtilSeries, when requested, is [gpu][bin] busy fraction.
	UtilSeries [][]float64
	// Retries counts training attempts lost to injected transient
	// faults; LostSeconds is the GPU time those attempts burned.
	Retries     int
	LostSeconds float64
	// GPUFailures counts permanent failures applied; FailedGPUs lists
	// the dead GPUs; Reschedules the recovery re-plans; TasksMigrated
	// the stranded tasks moved to survivors.
	GPUFailures   int
	FailedGPUs    []int
	Reschedules   int
	TasksMigrated int
}

// MeanUtilization averages Utilization across GPUs.
func (r *Result) MeanUtilization() float64 { return stats.Mean(r.Utilization) }

type gpuState struct {
	seq     []core.TaskRef
	next    int
	free    float64    // when the GPU finishes its current training
	prevJob core.JobID // job of the last task run (-1 initially)
	mem     *gpumem.Manager
	busy    []interval // training intervals, for utilization
	over    []interval // switching intervals
}

type interval struct{ from, to float64 }

// replay is the state shared by both replay engines: the validated
// inputs, per-GPU executor state, round-barrier bookkeeping, and the
// accumulating Result. Selection strategy is the only thing the
// engines disagree on; execution accounting (exec) is common, so the
// realized times, events, and counters cannot drift apart.
type replay struct {
	in            *core.Instance
	cl            *cluster.Cluster
	models        []*model.Model
	opts          Options
	withSwitching bool

	rng      *stats.RNG
	rec      *obs.Recorder
	observed bool

	// Transient-fault state: per-GPU positional streams (so dispatch
	// order can't change how many attempts a GPU loses) and straggler
	// factors. faultRate == 0 leaves the replay byte-identical to a
	// fault-free run — no stream is ever consulted.
	faultRate float64
	faultRNG  []*stats.RNG
	slows     []float64

	cTasks, cSwitches, cStall, cHits, cWait, cTrain *obs.Counter
	cRetries, cLost, cFailures, cMigrated, cResched *obs.Counter

	gpus []*gpuState
	// Barrier bookkeeping: remaining tasks and realized end per round.
	remaining [][]int
	roundEnd  [][]float64
	// psHost anchors each job's parameter server to the host of its
	// first executed task (host-aware sync).
	psHost map[core.JobID]int

	res     *Result
	pending int

	// onRoundDone, when set, fires after the last task of (job,
	// round) completes — i.e. the instant the round's barrier value
	// becomes final. The incremental engine hooks it to wake GPUs
	// whose head task was blocked on that round.
	onRoundDone func(job core.JobID, round int)
}

func newReplay(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options) (*replay, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.ValidateSchedule(in, sch); err != nil {
		return nil, fmt.Errorf("sim: invalid plan: %w", err)
	}
	if cl != nil && cl.Size() != in.NumGPUs {
		return nil, fmt.Errorf("sim: cluster has %d GPUs, instance %d", cl.Size(), in.NumGPUs)
	}
	if models != nil && len(models) != len(in.Jobs) {
		return nil, fmt.Errorf("sim: %d models for %d jobs", len(models), len(in.Jobs))
	}
	if err := opts.Faults.Validate(in.NumGPUs); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	r := &replay{
		in:            in,
		cl:            cl,
		models:        models,
		opts:          opts,
		withSwitching: cl != nil && models != nil && !opts.DisableSwitching,
		rng:           stats.New(opts.Seed),
		rec:           opts.Recorder,
		observed:      opts.Recorder.Enabled(),
		// Counters are resolved once up front; on a nil registry they
		// are nil and every Add is a no-op.
		cTasks:    opts.Metrics.Counter("hare_sim_tasks_total"),
		cSwitches: opts.Metrics.Counter("hare_sim_switches_total"),
		cStall:    opts.Metrics.Counter("hare_sim_switch_stall_seconds_total"),
		cHits:     opts.Metrics.Counter("hare_sim_residency_hits_total"),
		cWait:     opts.Metrics.Counter("hare_sim_barrier_wait_seconds_total"),
		cTrain:    opts.Metrics.Counter("hare_sim_train_seconds_total"),
		cRetries:  opts.Metrics.Counter("hare_sim_faults_injected_total"),
		cLost:     opts.Metrics.Counter("hare_sim_fault_lost_seconds_total"),
		cFailures: opts.Metrics.Counter("hare_sim_gpu_failures_total"),
		cMigrated: opts.Metrics.Counter("hare_sim_tasks_migrated_total"),
		cResched:  opts.Metrics.Counter("hare_sim_reschedules_total"),
		psHost:    make(map[core.JobID]int),
		pending:   in.NumTasks(),
	}
	r.faultRate = opts.Faults.TransientRate()
	if r.faultRate > 0 {
		r.faultRNG = make([]*stats.RNG, in.NumGPUs)
		for m := range r.faultRNG {
			r.faultRNG[m] = stats.New(faults.RetrySeed(opts.Faults.TransientSeed(), m))
		}
	}
	if opts.Faults != nil && len(opts.Faults.Stragglers) > 0 {
		r.slows = make([]float64, in.NumGPUs)
		for m := range r.slows {
			r.slows[m] = opts.Faults.SlowdownOf(m)
		}
	}
	r.gpus = make([]*gpuState, in.NumGPUs)
	for m, seq := range sch.Sequences(in.NumGPUs) {
		r.gpus[m] = &gpuState{seq: seq, prevJob: -1}
		if r.withSwitching && opts.Speculative {
			r.gpus[m].mem = gpumem.NewManager(cl.GPUs[m].Type.MemBytes)
			r.gpus[m].mem.SetPolicy(opts.MemPolicy)
			r.gpus[m].mem.SetRecorder(opts.Recorder, m)
			look := make([]gpumem.JobKey, len(seq))
			for i, t := range seq {
				look[i] = gpumem.JobKey(t.Job)
			}
			r.gpus[m].mem.SetLookahead(look)
		}
	}
	r.remaining = make([][]int, len(in.Jobs))
	r.roundEnd = make([][]float64, len(in.Jobs))
	for _, j := range in.Jobs {
		r.remaining[j.ID] = make([]int, j.Rounds)
		r.roundEnd[j.ID] = make([]float64, j.Rounds)
		for rd := range r.remaining[j.ID] {
			r.remaining[j.ID][rd] = j.Scale
		}
	}
	r.res = &Result{
		Trace:           &trace.Trace{},
		JobCompletion:   make([]float64, len(in.Jobs)),
		BusySeconds:     make([]float64, in.NumGPUs),
		OverheadSeconds: make([]float64, in.NumGPUs),
		Utilization:     make([]float64, in.NumGPUs),
	}
	return r, nil
}

// barrierOf returns the earliest time the given task may start due to
// its job's arrival and previous-round barrier, or ok=false while the
// previous round is incomplete (its barrier value is not final yet).
func (r *replay) barrierOf(t core.TaskRef) (float64, bool) {
	if t.Round == 0 {
		return r.in.Jobs[t.Job].Arrival, true
	}
	if r.remaining[t.Job][t.Round-1] > 0 {
		return 0, false
	}
	return math.Max(r.roundEnd[t.Job][t.Round-1], r.in.Jobs[t.Job].Arrival), true
}

// exec runs the chosen GPU's head task with the pre-computed start
// and switching stall, and performs all accounting: realized times,
// events, counters, barrier bookkeeping, trace. Both engines call it
// with identical arguments in the identical order, which is what
// makes their outputs byte-identical.
func (r *replay) exec(bestGPU int, bestStart, bestSwitch float64, bestHit bool, bestB switching.Breakdown) {
	g := r.gpus[bestGPU]
	t := g.seq[g.next]
	g.next++
	r.pending--

	train := r.in.Train[t.Job][bestGPU]
	syncT := r.in.Sync[t.Job][bestGPU]
	if r.opts.HostAwareSync && r.cl != nil && r.cl.IntraHostBps > 0 {
		host := r.cl.GPUs[bestGPU].Host
		if h, anchored := r.psHost[t.Job]; !anchored {
			// The job's first executed task anchors its PS.
			r.psHost[t.Job] = host
			syncT *= r.cl.NetworkBps / r.cl.IntraHostBps
		} else if h == host {
			syncT *= r.cl.NetworkBps / r.cl.IntraHostBps
		}
	}
	if r.opts.JitterFrac > 0 {
		train = r.rng.Jitter(train, r.opts.JitterFrac)
		syncT = r.rng.Jitter(syncT, r.opts.JitterFrac)
	}
	if r.slows != nil {
		train *= r.slows[bestGPU]
	}
	// Transient faults: each attempt is lost with probability
	// faultRate and re-runs from the round checkpoint, so the task
	// occupies the GPU for (retries+1) training times. The stream is
	// per-GPU and consumed greedily (draw until first success), so the
	// loss pattern depends only on how many tasks the GPU has run —
	// matching the testbed's executors attempt for attempt.
	retries := 0
	if r.faultRate > 0 {
		for r.faultRNG[bestGPU].Float64() < r.faultRate {
			retries++
		}
	}
	start := bestStart
	total := train * float64(retries+1)
	trainEnd := start + total
	end := trainEnd + syncT
	if retries > 0 {
		r.res.Retries += retries
		r.res.LostSeconds += train * float64(retries)
		r.cRetries.Add(float64(retries))
		r.cLost.Add(train * float64(retries))
		if r.observed {
			for a := 1; a <= retries; a++ {
				r.rec.Emit(obs.Event{
					Type: obs.EvFaultInjected, Time: start + train*float64(a), GPU: bestGPU,
					Job: int(t.Job), Round: t.Round, Index: t.Index, Dur: train,
				})
			}
		}
	}

	// Idle time beyond the GPU's readiness (and the switch stall)
	// is waiting on the job: its previous round's barrier, or its
	// arrival — the stall relaxed scale-fixed sync exists to shrink.
	if wait := start - bestSwitch - g.free; wait > 0 {
		r.cWait.Add(wait)
		if r.observed {
			reason := "round"
			if t.Round == 0 {
				reason = "arrival"
			}
			r.rec.Emit(obs.Event{
				Type: obs.EvBarrierWait, Time: g.free, GPU: bestGPU,
				Job: int(t.Job), Round: t.Round, Index: t.Index,
				Dur: wait, Note: reason,
			})
		}
	}
	if bestSwitch > 0 {
		g.over = append(g.over, interval{start - bestSwitch, start})
		r.res.OverheadSeconds[bestGPU] += bestSwitch
		r.res.TotalSwitch += bestSwitch
		r.res.SwitchCount++
		r.cSwitches.Inc()
		r.cStall.Add(bestSwitch)
		if bestHit {
			r.res.ResidencyHits++
			r.cHits.Inc()
		}
		if r.observed {
			r.rec.Emit(obs.Event{
				Type: obs.EvJobSwitch, Time: start - bestSwitch, GPU: bestGPU,
				Job: int(t.Job), From: int(g.prevJob), Dur: bestSwitch,
				Clean: bestB.Clean, Context: bestB.Context, Init: bestB.Init,
				Transfer: bestB.Transfer, Hit: bestHit,
			})
		}
	}
	if r.observed {
		r.rec.Emit(obs.Event{
			Type: obs.EvTaskStart, Time: start, GPU: bestGPU,
			Job: int(t.Job), Round: t.Round, Index: t.Index,
		})
	}
	if g.mem != nil {
		md := r.models[t.Job]
		g.mem.BeginAt(gpumem.JobKey(t.Job), md.TrainFootprintBytes, start)
		g.mem.Complete(gpumem.JobKey(t.Job), md.ParamBytes, trainEnd)
	}
	g.busy = append(g.busy, interval{start, trainEnd})
	r.res.BusySeconds[bestGPU] += total
	r.cTasks.Inc()
	r.cTrain.Add(total)
	if r.observed {
		r.rec.Emit(obs.Event{
			Type: obs.EvTaskFinish, Time: end, GPU: bestGPU,
			Job: int(t.Job), Round: t.Round, Index: t.Index,
			Dur: end - start, Train: total, Sync: syncT,
			Note: r.in.Jobs[t.Job].Model,
		})
	}
	g.free = trainEnd
	g.prevJob = t.Job

	r.remaining[t.Job][t.Round]--
	if end > r.roundEnd[t.Job][t.Round] {
		r.roundEnd[t.Job][t.Round] = end
	}
	if end > r.res.JobCompletion[t.Job] {
		r.res.JobCompletion[t.Job] = end
	}
	if end > r.res.Makespan {
		r.res.Makespan = end
	}
	r.res.Trace.Add(trace.TaskRecord{
		Task: t, GPU: bestGPU, Start: start,
		Train: total, Sync: syncT, Switch: bestSwitch,
	})
	if r.remaining[t.Job][t.Round] == 0 && r.onRoundDone != nil {
		r.onRoundDone(t.Job, t.Round)
	}
}

// finish derives the aggregate metrics once every task has run.
func (r *replay) finish() *Result {
	res := r.res
	for j, c := range res.JobCompletion {
		res.WeightedJCT += r.in.Jobs[j].Weight * c
	}
	if res.Makespan > 0 {
		for m := range res.Utilization {
			res.Utilization[m] = res.BusySeconds[m] / res.Makespan
		}
	}
	if r.opts.UtilBins > 0 && res.Makespan > 0 {
		res.UtilSeries = make([][]float64, r.in.NumGPUs)
		for m, g := range r.gpus {
			res.UtilSeries[m] = binIntervals(g.busy, res.Makespan, r.opts.UtilBins)
		}
	}
	return res
}

// candidate caches one GPU's head-task selection: its feasible start
// and the switching stall it would pay. Valid from the moment it is
// computed until the GPU executes — g.free, g.prevJob and g.mem only
// change on execution, and a released barrier value is final.
type candidate struct {
	start float64
	sw    float64
	hit   bool
	b     switching.Breakdown
}

// costKey memoizes switching.Cost: its output depends only on the GPU
// type, the predecessor job (-1 for a cold start), the successor job,
// and whether the successor's weights are resident.
type costKey struct {
	gpuType  int
	prev     core.JobID
	next     core.JobID
	resident bool
}

// Run replays the schedule. cl and models may be nil, in which case
// switching costs are zero; otherwise models[j] must name job j's
// model for switching and memory accounting.
func Run(in *core.Instance, sch *core.Schedule, cl *cluster.Cluster, models []*model.Model, opts Options) (*Result, error) {
	stopSetup := opts.Phases.Start("sim_setup")
	r, err := newReplay(in, sch, cl, models, opts)
	if err != nil {
		return nil, err
	}

	// typeIdx collapses the fleet onto its few distinct GPU types so
	// switching costs memoize across GPUs, not just per GPU.
	var typeIdx []int
	if r.withSwitching {
		typeIdx = make([]int, in.NumGPUs)
		types := make(map[cluster.GPUType]int)
		for m := range typeIdx {
			id, ok := types[cl.GPUs[m].Type]
			if !ok {
				id = len(types)
				types[cl.GPUs[m].Type] = id
			}
			typeIdx[m] = id
		}
	}
	memo := make(map[costKey]switching.Breakdown)

	// ready holds every GPU whose head task has a final barrier,
	// keyed by its cached feasible start; ties pop in GPU-id order,
	// matching the reference scan's first-best-index selection.
	// waiters[j][rd] lists the GPUs whose head task is blocked on
	// round rd of job j completing.
	ready := eventq.NewIndexedHeap(in.NumGPUs)
	cands := make([]candidate, in.NumGPUs)
	waiters := make([][][]int, len(in.Jobs))
	for _, j := range in.Jobs {
		waiters[j.ID] = make([][]int, j.Rounds)
	}

	// alive[m] turns false when a planned GPU failure fires; dead GPUs
	// never re-enter the ready pool.
	alive := make([]bool, in.NumGPUs)
	for m := range alive {
		alive[m] = true
	}
	failures := opts.Faults.SortedFailures()
	nextFail := 0
	replanner := opts.Replanner
	if replanner == nil && len(failures) > 0 {
		replanner = sched.NewHare()
	}

	refresh := func(m int) {
		g := r.gpus[m]
		if !alive[m] || g.next >= len(g.seq) {
			return // dead, or sequence exhausted; GPU leaves the pool
		}
		t := g.seq[g.next]
		barrier, ok := r.barrierOf(t)
		if !ok {
			waiters[t.Job][t.Round-1] = append(waiters[t.Job][t.Round-1], m)
			return
		}
		var c candidate
		if r.withSwitching && g.prevJob != t.Job {
			resident := g.mem != nil && g.mem.Resident(gpumem.JobKey(t.Job))
			key := costKey{gpuType: typeIdx[m], prev: g.prevJob, next: t.Job, resident: resident}
			b, ok := memo[key]
			if !ok {
				var prev *model.Model
				if g.prevJob >= 0 {
					prev = models[g.prevJob]
				}
				b = switching.Cost(opts.Scheme, cl.GPUs[m].Type, prev, models[t.Job], resident)
				memo[key] = b
			}
			c.b = b
			c.sw, c.hit = b.Total(), b.ResidentHit
		}
		c.start = math.Max(g.free+c.sw, barrier)
		cands[m] = c
		ready.Set(m, c.start)
	}

	r.onRoundDone = func(job core.JobID, round int) {
		woken := waiters[job][round]
		waiters[job][round] = nil
		for _, m := range woken {
			refresh(m)
		}
	}

	// failGPU applies one permanent failure: the GPU is cut from the
	// pool, its remaining tasks are stranded, and the replanner is
	// re-run on the residual instance (all not-yet-executed tasks ×
	// surviving GPUs) to refill the survivors' sequences. Tasks whose
	// training already committed stand — pops are globally
	// nondecreasing in start time, so everything committed started at
	// or before the failure instant, and a task whose training began
	// before the failure is allowed to finish (detection at task
	// granularity, mirroring the distributed plane's lease
	// granularity). Re-execution elsewhere restarts a round-r task
	// from the round-(r-1) checkpoint, so migration never changes
	// learned parameters (relaxed scale-fixed synchronization).
	failGPU := func(f faults.GPUFailure) error {
		m := f.GPU
		alive[m] = false
		r.res.GPUFailures++
		r.res.FailedGPUs = append(r.res.FailedGPUs, m)
		r.cFailures.Inc()
		if r.observed {
			kind := "device failure"
			if f.Crash {
				kind = "executor crash"
			}
			r.rec.Emit(obs.Event{
				Type: obs.EvGPUFailed, Time: f.Time, GPU: m, Job: -1,
				Note: fmt.Sprintf("injected %s at t=%g", kind, f.Time),
			})
		}
		g := r.gpus[m]
		stranded := append([]core.TaskRef(nil), g.seq[g.next:]...)
		g.seq, g.next = nil, 0
		if ready.Contains(m) {
			ready.Remove(m)
		}
		var pending []core.TaskRef
		var aliveList []int
		for mm, gg := range r.gpus {
			if !alive[mm] {
				continue
			}
			aliveList = append(aliveList, mm)
			pending = append(pending, gg.seq[gg.next:]...)
		}
		pending = append(pending, stranded...)
		if len(pending) == 0 {
			return nil // dead GPU had already drained; nothing to move
		}
		if len(aliveList) == 0 {
			return fmt.Errorf("sim: no surviving GPUs with %d tasks pending (GPU %d failed at t=%g)",
				len(pending), m, f.Time)
		}
		residual, err := faults.NewResidual(r.in, pending, aliveList)
		if err != nil {
			return fmt.Errorf("sim: recovery from GPU %d failure: %w", m, err)
		}
		plan2, err := replanner.Schedule(residual.Instance)
		if err != nil {
			return fmt.Errorf("sim: re-plan after GPU %d failure: %w", m, err)
		}
		seqs, err := residual.Sequences(plan2)
		if err != nil {
			return fmt.Errorf("sim: re-plan after GPU %d failure: %w", m, err)
		}
		strandedSet := make(map[core.TaskRef]bool, len(stranded))
		for _, t := range stranded {
			strandedSet[t] = true
		}
		for j := range waiters {
			for rd := range waiters[j] {
				waiters[j][rd] = nil
			}
		}
		for _, mm := range aliveList {
			gg := r.gpus[mm]
			gg.seq, gg.next = seqs[mm], 0
			if gg.mem != nil {
				look := make([]gpumem.JobKey, len(gg.seq))
				for i, t := range gg.seq {
					look[i] = gpumem.JobKey(t.Job)
				}
				gg.mem.SetLookahead(look)
			}
			if ready.Contains(mm) {
				ready.Remove(mm)
			}
			refresh(mm)
		}
		r.res.Reschedules++
		r.cResched.Inc()
		r.res.TasksMigrated += len(stranded)
		r.cMigrated.Add(float64(len(stranded)))
		if r.observed {
			r.rec.Emit(obs.Event{
				Type: obs.EvReschedule, Time: f.Time, GPU: m, Job: -1,
				Note: fmt.Sprintf("tasks=%d gpus=%d", len(pending), len(aliveList)),
			})
			for mm, seq := range seqs {
				for _, t := range seq {
					if strandedSet[t] {
						r.rec.Emit(obs.Event{
							Type: obs.EvTaskMigrated, Time: f.Time, GPU: mm,
							Job: int(t.Job), Round: t.Round, Index: t.Index, From: m,
						})
					}
				}
			}
		}
		return nil
	}

	for m := range r.gpus {
		refresh(m)
	}
	stopSetup()
	stopLoop := opts.Phases.Start("sim_event_loop")
	for r.pending > 0 {
		m, start, ok := ready.Min()
		if !ok {
			return nil, fmt.Errorf("sim: deadlock with %d tasks pending (round barrier never satisfied)", r.pending)
		}
		// A planned failure due at or before the next task start fires
		// first: it may strand that very task.
		if nextFail < len(failures) && failures[nextFail].Time <= start {
			f := failures[nextFail]
			nextFail++
			if err := failGPU(f); err != nil {
				return nil, err
			}
			continue
		}
		ready.PopMin()
		c := cands[m]
		r.exec(m, c.start, c.sw, c.hit, c.b)
		refresh(m)
	}
	stopLoop()
	if opts.Metrics != nil {
		ops := ready.Ops()
		opts.Metrics.Counter("hare_sim_heap_inserts_total").Add(float64(ops.Inserts))
		opts.Metrics.Counter("hare_sim_heap_updates_total").Add(float64(ops.Updates))
		opts.Metrics.Counter("hare_sim_heap_removes_total").Add(float64(ops.Removes))
		opts.Metrics.Counter("hare_sim_heap_pops_total").Add(float64(ops.Pops))
	}
	return r.finish(), nil
}

// binIntervals converts busy intervals into a busy-fraction series of
// n bins over [0, horizon].
func binIntervals(ivs []interval, horizon float64, n int) []float64 {
	out := make([]float64, n)
	w := horizon / float64(n)
	for _, iv := range ivs {
		if iv.to <= 0 || iv.from >= horizon {
			continue
		}
		lo := int(iv.from / w)
		if lo < 0 {
			lo = 0
		}
		hi := int(iv.to / w)
		for b := lo; b <= hi && b < n; b++ {
			bs, be := float64(b)*w, float64(b+1)*w
			overlap := math.Min(iv.to, be) - math.Max(iv.from, bs)
			if overlap > 0 {
				out[b] += overlap / w
			}
		}
	}
	for b := range out {
		if out[b] > 1 {
			out[b] = 1
		}
	}
	return out
}
