package sim

import (
	"strings"
	"testing"

	"hare/internal/obs"
	"hare/internal/obs/perf"
)

// TestRunPhaseTelemetry: with a phase recorder attached, a replay
// reports its setup and event-loop spans plus the ready heap's
// operation counts; with everything nil, Run takes the uninstrumented
// path untouched (the zero-overhead contract BenchmarkObsDisabled
// measures).
func TestRunPhaseTelemetry(t *testing.T) {
	in := twoJobInstance()
	plan := planFor(t, in)

	reg := obs.NewRegistry()
	res, err := Run(in, plan, nil, nil, Options{
		Metrics: reg,
		Phases:  perf.NewPhaseRecorder(reg),
	})
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`hare_perf_phase_seconds_count{phase="sim_setup"} 1`,
		`hare_perf_phase_seconds_count{phase="sim_event_loop"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// Every executed task was popped from the ready heap exactly once.
	if got := reg.Counter("hare_sim_heap_pops_total").Value(); got != float64(in.NumTasks()) {
		t.Errorf("heap pops %v, want %d", got, in.NumTasks())
	}
	if reg.Counter("hare_sim_heap_inserts_total").Value() <= 0 {
		t.Error("heap inserts not exported")
	}

	// The uninstrumented run must agree on the result, of course.
	bare, err := Run(in, plan, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow floateq identical inputs must produce identical floats
	if bare.WeightedJCT != res.WeightedJCT || bare.Makespan != res.Makespan {
		t.Errorf("telemetry changed results: %v/%v vs %v/%v",
			res.WeightedJCT, res.Makespan, bare.WeightedJCT, bare.Makespan)
	}

	// The reference engine records the same phases.
	reg2 := obs.NewRegistry()
	if _, err := RunReference(in, plan, nil, nil, Options{Phases: perf.NewPhaseRecorder(reg2)}); err != nil {
		t.Fatal(err)
	}
	if c := reg2.Histogram(`hare_perf_phase_seconds{phase="sim_event_loop"}`, perf.DefPhaseBuckets).Count(); c != 1 {
		t.Errorf("reference event-loop phase count %d, want 1", c)
	}
}
