package sim

// Equivalence and golden-determinism tests for the incremental replay
// engine: Run (indexed-heap candidate tracking + memoized switching
// costs) must be byte-identical to RunReference (the original
// full-rescan loop), and both must keep reproducing the seed-42
// outputs captured from the pre-rewrite implementation.

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/faults"
	"hare/internal/gpumem"
	"hare/internal/model"
	"hare/internal/profile"
	"hare/internal/sched"
	"hare/internal/stats"
	"hare/internal/switching"
	"hare/internal/trace"
	"hare/internal/workload"
)

// goldenWorkload reproduces hare.BuildWorkload(WorkloadConfig{Jobs:
// 40, Seed: 42, HorizonSeconds: 300, RoundsScale: 0.1}) on a 24-GPU
// high-heterogeneity fleet — the workload the golden values below
// were captured on (it is also BenchmarkSimulatorReplay's shape).
func goldenWorkload(t testing.TB) (*core.Instance, *cluster.Cluster, []*model.Model) {
	t.Helper()
	cl := cluster.Heterogeneous(cluster.HighHeterogeneity, 24)
	arrivals := trace.Arrivals(40, 300, 43)
	specs := workload.Generate(workload.Options{
		NumJobs:     40,
		Arrivals:    arrivals,
		BatchScale:  1,
		RoundsScale: 0.1,
		MaxSync:     cl.Size(),
		Seed:        44,
	})
	prof := profile.New(profile.Options{Seed: 45})
	jobSpecs := make([]profile.JobSpec, len(specs))
	for i, s := range specs {
		jobSpecs[i] = s
	}
	in, err := prof.BuildInstance(workload.Jobs(specs), jobSpecs, cl)
	if err != nil {
		t.Fatal(err)
	}
	models := make([]*model.Model, len(specs))
	for i, s := range specs {
		models[i] = model.MustByName(s.Model)
	}
	return in, cl, models
}

// traceHash fingerprints every realized field of every task record,
// printed at full float64 precision, so any drift in the replay's
// arithmetic or ordering changes the hash.
func traceHash(tr *trace.Trace) uint64 {
	h := fnv.New64a()
	for _, r := range tr.Records {
		fmt.Fprintf(h, "%v|%d|%.17g|%.17g|%.17g|%.17g\n",
			r.Task, r.GPU, r.Start, r.Train, r.Sync, r.Switch)
	}
	return h.Sum64()
}

// equivOptions is the option matrix the engines are compared under:
// every feature that touches the inner loop (switching schemes,
// speculative memory, jitter, host-aware sync, utilization binning).
// A slice, not a map: trials must visit the option sets in one fixed
// order or the test itself becomes nondeterministic.
func equivOptions() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"plain", Options{DisableSwitching: true}},
		{"default", Options{Scheme: switching.Default}},
		{"pipeswitch", Options{Scheme: switching.PipeSwitch}},
		{"hare", Options{Scheme: switching.Hare}},
		{"hare-spec", Options{Scheme: switching.Hare, Speculative: true}},
		{"hare-belady", Options{Scheme: switching.Hare, Speculative: true, MemPolicy: gpumem.Belady}},
		{"jitter", Options{Scheme: switching.Hare, Speculative: true, JitterFrac: 0.05, Seed: 9}},
		{"hostaware", Options{Scheme: switching.Hare, Speculative: true, HostAwareSync: true}},
		{"utilbins", Options{Scheme: switching.Hare, Speculative: true, UtilBins: 16}},
		{"all-features", Options{Scheme: switching.Hare, Speculative: true, JitterFrac: 0.03, Seed: 4, HostAwareSync: true, UtilBins: 32}},
		// Transient faults and stragglers live in the shared exec core,
		// so both engines must replay them bit-identically too.
		{"faults", Options{Scheme: switching.Hare, Speculative: true,
			Faults: &faults.Plan{Rate: 0.1, Seed: 7}}},
		{"faults-straggler", Options{Scheme: switching.Hare, Speculative: true, JitterFrac: 0.03, Seed: 4,
			Faults: &faults.Plan{Rate: 0.2, Seed: 1, Stragglers: []faults.Straggler{{GPU: 0, Factor: 1.5}}}}},
	}
}

// TestRunMatchesReference compares the incremental engine against the
// reference scan on randomized instances under every option set: the
// full Result (trace included) must be deeply equal, bit for bit.
func TestRunMatchesReference(t *testing.T) {
	rng := stats.New(1234)
	zoo := model.Zoo()
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng.Split())
		sub := cluster.Heterogeneous(cluster.HighHeterogeneity, in.NumGPUs)
		models := make([]*model.Model, len(in.Jobs))
		for j := range models {
			models[j] = zoo[(trial+j)%len(zoo)]
		}
		plan := planFor(t, in)
		for _, c := range equivOptions() {
			want, err := RunReference(in, plan, sub, models, c.opts)
			if err != nil {
				t.Fatalf("trial %d %s: reference: %v", trial, c.name, err)
			}
			got, err := Run(in, plan, sub, models, c.opts)
			if err != nil {
				t.Fatalf("trial %d %s: run: %v", trial, c.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s: incremental engine diverged from reference\n got: %+v\nwant: %+v",
					trial, c.name, got, want)
			}
		}
	}
}

// TestRunMatchesReferenceAllSchedulers pins the equivalence on the
// golden workload across all five schedulers' plans — the shapes the
// evaluation figures replay.
func TestRunMatchesReferenceAllSchedulers(t *testing.T) {
	in, cl, models := goldenWorkload(t)
	for _, a := range sched.All() {
		plan, err := a.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		scheme := switching.Default
		if a.Name() == "Hare" {
			scheme = switching.Hare
		}
		opts := Options{Scheme: scheme, Speculative: scheme == switching.Hare, Seed: 42}
		want, err := RunReference(in, plan, cl, models, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(in, plan, cl, models, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: incremental engine diverged from reference", a.Name())
		}
	}
}

// golden values captured from the pre-rewrite simulator (commit
// a6d83ef) on the seed-42 workload: weighted JCT at full precision
// and an FNV-1a hash over every realized trace field. Both engines
// must keep reproducing them exactly.
var goldenSeed42 = map[string]struct {
	WeightedJCT float64
	TraceHash   uint64
}{
	"Hare":        {WeightedJCT: 28954.482652830477, TraceHash: 0xc87e1b6576ada40d},
	"Gavel_FIFO":  {WeightedJCT: 53144.681243714876, TraceHash: 0xbfc789f73aa7e882},
	"SRTF":        {WeightedJCT: 38147.792314787686, TraceHash: 0x9454be02020716fa},
	"Sched_Homo":  {WeightedJCT: 37733.070179670423, TraceHash: 0x67aeab182f4ca66a},
	"Sched_Allox": {WeightedJCT: 35386.501114969717, TraceHash: 0x64337612ef41c469},
}

// goldenSeed42Jittered is the same capture with JitterFrac: 0.03,
// HostAwareSync and UtilBins: 32 — pinning the jitter RNG draw order
// and the host-aware sync anchoring through the rewrite.
var goldenSeed42Jittered = map[string]struct {
	WeightedJCT float64
	TraceHash   uint64
}{
	"Hare":        {WeightedJCT: 28961.914423382324, TraceHash: 0x36bb41ad80e6bf79},
	"Gavel_FIFO":  {WeightedJCT: 53131.634497383326, TraceHash: 0x40b75a63cfe4a4e9},
	"SRTF":        {WeightedJCT: 38133.936312401449, TraceHash: 0xeec25bfe7f1d80a9},
	"Sched_Homo":  {WeightedJCT: 37686.477592173163, TraceHash: 0x99c8516aa44be1a5},
	"Sched_Allox": {WeightedJCT: 35081.627204666249, TraceHash: 0x7161761fd7ae1855},
}

func TestRunGoldenSeed42(t *testing.T) {
	in, cl, models := goldenWorkload(t)
	run := func(name string, opts Options, golden map[string]struct {
		WeightedJCT float64
		TraceHash   uint64
	}) {
		for _, a := range sched.All() {
			plan, err := a.Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			o := opts
			if a.Name() == "Hare" {
				o.Scheme = switching.Hare
				o.Speculative = true
			}
			// Fixed engine order: ranging a map here would interleave
			// the two engines' error output nondeterministically.
			engines := []struct {
				name string
				run  func(*core.Instance, *core.Schedule, *cluster.Cluster, []*model.Model, Options) (*Result, error)
			}{
				{"Run", Run}, {"RunReference", RunReference},
			}
			for _, eng := range engines {
				engine, f := eng.name, eng.run
				res, err := f(in, plan, cl, models, o)
				if err != nil {
					t.Fatal(err)
				}
				want := golden[a.Name()]
				if res.WeightedJCT != want.WeightedJCT {
					t.Errorf("%s/%s/%s: weighted JCT %.17g, golden %.17g",
						name, a.Name(), engine, res.WeightedJCT, want.WeightedJCT)
				}
				if h := traceHash(res.Trace); h != want.TraceHash {
					t.Errorf("%s/%s/%s: trace hash %#x, golden %#x",
						name, a.Name(), engine, h, want.TraceHash)
				}
			}
		}
	}
	run("base", Options{Scheme: switching.Default, Seed: 42}, goldenSeed42)
	run("jittered", Options{
		Scheme: switching.Default, Seed: 42,
		JitterFrac: 0.03, HostAwareSync: true, UtilBins: 32,
	}, goldenSeed42Jittered)
}
