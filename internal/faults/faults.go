// Package faults is the failure model shared by the simulator, the
// in-process testbed, and the distributed control plane. A Plan is a
// seeded, declarative description of everything that goes wrong during
// a run: transient task faults (an attempt's gradient is lost and the
// task retries from the round checkpoint), permanent GPU failures at a
// given simulated time, executor crashes (the distributed analogue: the
// process stops heartbeating and is fenced), and stragglers (a GPU
// whose training runs slower by a constant factor).
//
// The same Plan replays identically in every backend: the transient
// fault stream is a per-GPU deterministic RNG seeded with
// RetrySeed(Plan.Seed, gpu), so the in-process testbed, the simulator,
// and remote executors draw the same attempt outcomes for the same
// per-GPU task multiset; permanent failures are keyed to simulated
// time, which all backends share.
//
// Recovery is possible at all because of the paper's relaxed
// scale-fixed synchronization (§2.2.3): a round-r task aggregates into
// the round no matter which GPU runs it or when, as long as it starts
// from the round-(r-1) checkpoint — so stranded tasks migrate to
// surviving GPUs without perturbing the learned parameters. The
// Residual type in this package builds the shrunken scheduling
// instance (unfinished work, surviving GPUs) that Algorithm 1 is
// re-run on after a detected failure.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// GPUFailure is a permanent loss of one GPU at a simulated time: the
// device (or its executor process, when Crash is set) stops making
// progress and never returns. Tasks it had not completed are
// rescheduled onto the survivors.
type GPUFailure struct {
	GPU  int
	Time float64 // simulated seconds
	// Crash marks an executor crash/disconnect rather than a device
	// fault. The scheduler-side recovery path is identical (the lease
	// expires, the GPU is fenced and its work migrates); the
	// distributed testbed uses the distinction to make the executor
	// process actually stop instead of the coordinator pre-marking the
	// GPU failed.
	Crash bool
}

// Straggler slows one GPU down: every training attempt on it takes
// Factor times its profiled duration. Factor must be >= 1.
type Straggler struct {
	GPU    int
	Factor float64
}

// Plan is a complete, seeded failure scenario.
type Plan struct {
	// Rate is the transient task-fault probability in [0, 1]: each
	// training attempt is lost (and retried from the checkpoint) with
	// this probability.
	Rate float64
	// Seed drives the transient fault streams (see RetrySeed).
	Seed int64
	// Failures lists permanent GPU failures and executor crashes.
	Failures []GPUFailure
	// Stragglers lists per-GPU slowdown factors.
	Stragglers []Straggler
	// Net, when non-nil, adds network-level chaos (message drop, delay,
	// duplication, reorder, partitions, coordinator outages). Only the
	// distributed engine honors it; the simulator and in-process
	// testbed have no network and reject plans that set it.
	Net *NetChaos
}

// Empty reports whether the plan injects nothing. Nil-safe.
func (p *Plan) Empty() bool {
	return p == nil || (p.Rate == 0 && len(p.Failures) == 0 && len(p.Stragglers) == 0 && p.Net.Empty())
}

// TransientRate returns the transient fault probability. Nil-safe.
func (p *Plan) TransientRate() float64 {
	if p == nil {
		return 0
	}
	return p.Rate
}

// TransientSeed returns the transient fault seed. Nil-safe.
func (p *Plan) TransientSeed() int64 {
	if p == nil {
		return 0
	}
	return p.Seed
}

// HasGPUFailures reports whether any permanent failure or crash is
// planned. Nil-safe.
func (p *Plan) HasGPUFailures() bool { return p != nil && len(p.Failures) > 0 }

// SlowdownOf returns the straggler factor for a GPU (1 when the GPU is
// healthy). Nil-safe.
func (p *Plan) SlowdownOf(gpu int) float64 {
	if p == nil {
		return 1
	}
	for _, s := range p.Stragglers {
		if s.GPU == gpu {
			return s.Factor
		}
	}
	return 1
}

// FailureOf returns the planned failure of a GPU, if any. Nil-safe.
func (p *Plan) FailureOf(gpu int) (GPUFailure, bool) {
	if p == nil {
		return GPUFailure{}, false
	}
	for _, f := range p.Failures {
		if f.GPU == gpu {
			return f, true
		}
	}
	return GPUFailure{}, false
}

// SortedFailures returns a copy of the planned failures ordered by
// time (ties by GPU index) — the order the simulator applies them in.
// Nil-safe.
func (p *Plan) SortedFailures() []GPUFailure {
	if p == nil {
		return nil
	}
	out := append([]GPUFailure(nil), p.Failures...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Time != out[b].Time {
			return out[a].Time < out[b].Time
		}
		return out[a].GPU < out[b].GPU
	})
	return out
}

// Validate checks internal consistency. numGPUs > 0 additionally
// range-checks every GPU index against the fleet size. Nil plans are
// valid (no faults).
func (p *Plan) Validate(numGPUs int) error {
	if p == nil {
		return nil
	}
	if math.IsNaN(p.Rate) || p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("faults: rate %g outside [0, 1]", p.Rate)
	}
	seenFail := make(map[int]bool)
	for _, f := range p.Failures {
		if f.GPU < 0 || (numGPUs > 0 && f.GPU >= numGPUs) {
			return fmt.Errorf("faults: failure of GPU %d outside fleet of %d", f.GPU, numGPUs)
		}
		if math.IsNaN(f.Time) || math.IsInf(f.Time, 0) || f.Time < 0 {
			return fmt.Errorf("faults: GPU %d failure at invalid time %g", f.GPU, f.Time)
		}
		if seenFail[f.GPU] {
			return fmt.Errorf("faults: GPU %d fails more than once", f.GPU)
		}
		seenFail[f.GPU] = true
	}
	seenSlow := make(map[int]bool)
	for _, s := range p.Stragglers {
		if s.GPU < 0 || (numGPUs > 0 && s.GPU >= numGPUs) {
			return fmt.Errorf("faults: straggler GPU %d outside fleet of %d", s.GPU, numGPUs)
		}
		if math.IsNaN(s.Factor) || math.IsInf(s.Factor, 0) || s.Factor < 1 {
			return fmt.Errorf("faults: straggler GPU %d has factor %g (want >= 1)", s.GPU, s.Factor)
		}
		if seenSlow[s.GPU] {
			return fmt.Errorf("faults: GPU %d straggles more than once", s.GPU)
		}
		seenSlow[s.GPU] = true
	}
	return p.Net.Validate(numGPUs)
}

// String renders the plan in the -fault-spec grammar Parse accepts, so
// plans round-trip through their flag form. Nil and empty plans render
// as "".
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Rate != 0 {
		parts = append(parts, "rate="+strconv.FormatFloat(p.Rate, 'g', -1, 64))
	}
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	}
	for _, f := range p.Failures {
		kind := "fail"
		if f.Crash {
			kind = "crash"
		}
		parts = append(parts, fmt.Sprintf("%s=%d@%s", kind, f.GPU, strconv.FormatFloat(f.Time, 'g', -1, 64)))
	}
	for _, s := range p.Stragglers {
		parts = append(parts, fmt.Sprintf("slow=%dx%s", s.GPU, strconv.FormatFloat(s.Factor, 'g', -1, 64)))
	}
	parts = append(parts, p.Net.netString()...)
	return strings.Join(parts, ",")
}

// Parse builds a Plan from the -fault-spec grammar: comma- or
// semicolon-separated key=value fields,
//
//	rate=F     transient task-fault probability in [0, 1]
//	seed=N     seed of the transient fault streams
//	fail=G@T   GPU G permanently fails at simulated time T
//	crash=G@T  GPU G's executor crashes at simulated time T
//	slow=GxF   GPU G trains F times slower (F >= 1)
//
// plus the network-chaos grammar (distributed engine only):
//
//	netdrop=F          per-call loss probability in [0, 1)
//	netdup=F           per-call duplication probability in [0, 1)
//	netreorder=F       per-call reorder probability in [0, 1)
//	netdelay=MIN~MAX   uniform injected latency (durations, e.g. 10ms~50ms)
//	netseed=N          chaos decision-stream seed (defaults to seed=N)
//	partition=G@T+D    GPU G partitioned from the coordinator at
//	                   simulated time T for wall duration D
//	codown=T+D         coordinator killed at simulated time T, restarted
//	                   from its WAL after wall duration D
//
// fail, crash, slow, partition and codown may repeat. An empty spec
// yields an empty plan. GPU indices are range-checked later, against
// the instance, via Validate.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, field := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		switch key {
		case "rate":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad rate %q: %w", val, err)
			}
			p.Rate = rate
		case "seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %w", val, err)
			}
			p.Seed = seed
		case "fail", "crash":
			gs, ts, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("faults: bad %s %q (want GPU@TIME)", key, val)
			}
			gpu, err := strconv.Atoi(gs)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s GPU %q: %w", key, gs, err)
			}
			at, err := strconv.ParseFloat(ts, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s time %q: %w", key, ts, err)
			}
			p.Failures = append(p.Failures, GPUFailure{GPU: gpu, Time: at, Crash: key == "crash"})
		case "slow":
			gs, fs, ok := strings.Cut(val, "x")
			if !ok {
				return nil, fmt.Errorf("faults: bad slow %q (want GPUxFACTOR)", val)
			}
			gpu, err := strconv.Atoi(gs)
			if err != nil {
				return nil, fmt.Errorf("faults: bad slow GPU %q: %w", gs, err)
			}
			factor, err := strconv.ParseFloat(fs, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad slow factor %q: %w", fs, err)
			}
			p.Stragglers = append(p.Stragglers, Straggler{GPU: gpu, Factor: factor})
		default:
			handled, err := p.parseNetField(key, val)
			if err != nil {
				return nil, err
			}
			if !handled {
				return nil, fmt.Errorf("faults: unknown field %q (want rate/seed/fail/crash/slow or the net* chaos grammar)", key)
			}
		}
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return p, nil
}

// RetrySeed derives the per-GPU transient fault stream seed every
// backend uses. The in-process testbed, the simulator, and remote
// executors all seed stats.New with this value, which is what makes
// Retries counts identical across backends for the same plan.
func RetrySeed(seed int64, gpu int) int64 {
	return seed ^ int64(gpu)*0x9e3779b9
}
