package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseNetChaos(t *testing.T) {
	spec := "netdrop=0.05,netdelay=10ms~50ms,partition=1@40+2s,codown=80+0.5s"
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	n := p.Net
	if n == nil {
		t.Fatal("Parse left Net nil")
	}
	if n.Drop != 0.05 {
		t.Errorf("Drop = %g, want 0.05", n.Drop)
	}
	if n.DelayMin != 10*time.Millisecond || n.DelayMax != 50*time.Millisecond {
		t.Errorf("Delay = %v~%v, want 10ms~50ms", n.DelayMin, n.DelayMax)
	}
	if len(n.Partitions) != 1 || n.Partitions[0] != (Partition{GPU: 1, At: 40, Dur: 2 * time.Second}) {
		t.Errorf("Partitions = %+v", n.Partitions)
	}
	if len(n.CoordDowns) != 1 || n.CoordDowns[0] != (CoordDown{At: 80, Dur: 500 * time.Millisecond}) {
		t.Errorf("CoordDowns = %+v", n.CoordDowns)
	}
	if p.Empty() {
		t.Error("plan with net chaos reports Empty")
	}
}

func TestNetChaosStringRoundTrip(t *testing.T) {
	specs := []string{
		"netdrop=0.05,netdup=0.02,netreorder=0.01,netdelay=10ms~50ms,netseed=7",
		"rate=0.1,seed=3,crash=1@40,netdrop=0.2,partition=0@10+1s,partition=2@20+500ms,codown=30+250ms",
		"netdelay=5ms~5ms",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if back.String() != p.String() {
			t.Errorf("round trip %q -> %q -> %q", spec, p.String(), back.String())
		}
	}
}

func TestNetChaosSingleDelayShorthand(t *testing.T) {
	p, err := Parse("netdelay=25ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Net.DelayMin != 25*time.Millisecond || p.Net.DelayMax != 25*time.Millisecond {
		t.Errorf("Delay = %v~%v, want 25ms~25ms", p.Net.DelayMin, p.Net.DelayMax)
	}
}

func TestNetChaosValidate(t *testing.T) {
	bad := []string{
		"netdrop=1.5",
		"netdup=-0.1",
		"netreorder=1",
		"netdelay=50ms~10ms",
		"partition=0@-1+1s",
		"partition=0@10+0s",
		"codown=-5+1s",
		"partition=0@10",
		"codown=10",
		"netdelay=banana",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
	// Range check against the fleet only when a size is given.
	p, err := Parse("partition=9@10+1s")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err == nil {
		t.Error("Validate(4) accepted partition of GPU 9")
	}
	if err := p.Validate(0); err != nil {
		t.Errorf("Validate(0) rejected un-ranged plan: %v", err)
	}
}

func TestNetSeedFallback(t *testing.T) {
	p, err := Parse("seed=11,netdrop=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NetSeed(); got != 11 {
		t.Errorf("NetSeed = %d, want fallback 11", got)
	}
	p, err = Parse("seed=11,netdrop=0.1,netseed=42")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NetSeed(); got != 42 {
		t.Errorf("NetSeed = %d, want 42", got)
	}
	var nilPlan *Plan
	if nilPlan.NetSeed() != 0 || !nilPlan.NetModel().Empty() {
		t.Error("nil plan accessors not nil-safe")
	}
}

func TestNetChaosSorted(t *testing.T) {
	p, err := Parse("partition=2@20+1s,partition=1@10+1s,partition=0@10+1s,codown=30+1s,codown=5+1s")
	if err != nil {
		t.Fatal(err)
	}
	parts := p.Net.SortedPartitions()
	if parts[0].GPU != 0 || parts[1].GPU != 1 || parts[2].GPU != 2 {
		t.Errorf("SortedPartitions order: %+v", parts)
	}
	downs := p.Net.SortedCoordDowns()
	if downs[0].At != 5 || downs[1].At != 30 {
		t.Errorf("SortedCoordDowns order: %+v", downs)
	}
}

func TestUnknownFieldMentionsNetGrammar(t *testing.T) {
	_, err := Parse("bogus=1")
	if err == nil || !strings.Contains(err.Error(), "net") {
		t.Errorf("unknown-field error should hint at the net grammar, got %v", err)
	}
}
