package faults

import (
	"strings"
	"testing"

	"hare/internal/core"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "rate=0.05,seed=7,fail=3@120,crash=1@60,slow=2x1.5"
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Rate != 0.05 || p.Seed != 7 {
		t.Fatalf("rate/seed = %g/%d", p.Rate, p.Seed)
	}
	if len(p.Failures) != 2 || len(p.Stragglers) != 1 {
		t.Fatalf("failures/stragglers = %d/%d", len(p.Failures), len(p.Stragglers))
	}
	if p.Failures[0] != (GPUFailure{GPU: 3, Time: 120}) {
		t.Fatalf("fail = %+v", p.Failures[0])
	}
	if p.Failures[1] != (GPUFailure{GPU: 1, Time: 60, Crash: true}) {
		t.Fatalf("crash = %+v", p.Failures[1])
	}
	if p.Stragglers[0] != (Straggler{GPU: 2, Factor: 1.5}) {
		t.Fatalf("slow = %+v", p.Stragglers[0])
	}
	// String renders back to a spec Parse accepts, field for field.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(String): %v", err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip: %q vs %q", p2.String(), p.String())
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if p, err := Parse("  "); err != nil || !p.Empty() {
		t.Fatalf("empty spec: %v %+v", err, p)
	}
	for _, bad := range []string{
		"rate", "rate=x", "rate=1.5", "rate=-0.1",
		"seed=x", "fail=3", "fail=x@2", "fail=3@x", "fail=3@-1",
		"slow=2", "slow=x2", "slow=2x0.5", "bogus=1",
		"fail=3@1,fail=3@2", "slow=1x2,slow=1x3",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateRangeChecks(t *testing.T) {
	p := &Plan{Failures: []GPUFailure{{GPU: 5, Time: 1}}}
	if err := p.Validate(0); err != nil {
		t.Fatalf("unbounded validate: %v", err)
	}
	if err := p.Validate(4); err == nil {
		t.Fatal("GPU 5 accepted in a 4-GPU fleet")
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(4); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
}

func TestNilSafeHelpers(t *testing.T) {
	var p *Plan
	if !p.Empty() || p.HasGPUFailures() || p.TransientRate() != 0 || p.SlowdownOf(3) != 1 {
		t.Fatal("nil plan helpers misbehave")
	}
	if _, ok := p.FailureOf(0); ok {
		t.Fatal("nil plan has a failure")
	}
	if p.String() != "" || p.SortedFailures() != nil {
		t.Fatal("nil plan renders non-empty")
	}
}

func TestSortedFailures(t *testing.T) {
	p := &Plan{Failures: []GPUFailure{{GPU: 2, Time: 50}, {GPU: 0, Time: 10}, {GPU: 1, Time: 10}}}
	got := p.SortedFailures()
	want := []GPUFailure{{GPU: 0, Time: 10}, {GPU: 1, Time: 10}, {GPU: 2, Time: 50}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRetrySeedDistinctPerGPU(t *testing.T) {
	seen := make(map[int64]bool)
	for g := 0; g < 32; g++ {
		s := RetrySeed(42, g)
		if seen[s] {
			t.Fatalf("duplicate retry seed for gpu %d", g)
		}
		seen[s] = true
	}
}

// twoJobInstance builds a small 3-GPU instance: job 0 with 3 rounds ×
// scale 2, job 1 with 2 rounds × scale 1.
func twoJobInstance() *core.Instance {
	return &core.Instance{
		NumGPUs: 3,
		Jobs: []*core.Job{
			{ID: 0, Name: "a", Weight: 1, Rounds: 3, Scale: 2},
			{ID: 1, Name: "b", Weight: 2, Rounds: 2, Scale: 1, Arrival: 5},
		},
		Train: [][]float64{{1, 2, 3}, {4, 5, 6}},
		Sync:  [][]float64{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}},
	}
}

func TestResidualBuildsShrunkenInstance(t *testing.T) {
	in := twoJobInstance()
	// GPU 1 died. Job 0: round 1 partially done (index 0 done/in
	// flight, index 1 pending) plus all of round 2; job 1 fully done.
	pending := []core.TaskRef{
		{Job: 0, Round: 1, Index: 1},
		{Job: 0, Round: 2, Index: 0},
		{Job: 0, Round: 2, Index: 1},
	}
	res, err := NewResidual(in, pending, []int{0, 2})
	if err != nil {
		t.Fatalf("NewResidual: %v", err)
	}
	ri := res.Instance
	if ri.NumGPUs != 2 || len(ri.Jobs) != 1 {
		t.Fatalf("residual has %d GPUs, %d jobs", ri.NumGPUs, len(ri.Jobs))
	}
	if ri.Jobs[0].Rounds != 2 || ri.Jobs[0].Scale != 2 || ri.Jobs[0].Weight != 1 {
		t.Fatalf("residual job = %+v", ri.Jobs[0])
	}
	// Time rows keep only the surviving GPUs' columns.
	if ri.Train[0][0] != 1 || ri.Train[0][1] != 3 || ri.Sync[0][1] != 0.3 {
		t.Fatalf("residual times = %+v / %+v", ri.Train, ri.Sync)
	}
	// Mapping back: residual round 0 is original round 1.
	ot := res.ToOriginal(core.TaskRef{Job: 0, Round: 0, Index: 1})
	if ot != (core.TaskRef{Job: 0, Round: 1, Index: 1}) {
		t.Fatalf("ToOriginal = %v", ot)
	}
}

func TestResidualSequencesFilterAndRemap(t *testing.T) {
	in := twoJobInstance()
	pending := []core.TaskRef{
		{Job: 0, Round: 1, Index: 1},
		{Job: 0, Round: 2, Index: 0},
		{Job: 0, Round: 2, Index: 1},
	}
	res, err := NewResidual(in, pending, []int{0, 2})
	if err != nil {
		t.Fatalf("NewResidual: %v", err)
	}
	// Hand-build a feasible residual plan: round 0 on both GPUs, round
	// 1 on both GPUs after the barrier.
	plan := core.NewSchedule()
	plan.Place(core.TaskRef{Job: 0, Round: 0, Index: 0}, 0, 0)
	plan.Place(core.TaskRef{Job: 0, Round: 0, Index: 1}, 1, 0)
	plan.Place(core.TaskRef{Job: 0, Round: 1, Index: 0}, 0, 10)
	plan.Place(core.TaskRef{Job: 0, Round: 1, Index: 1}, 1, 10)
	seqs, err := res.Sequences(plan)
	if err != nil {
		t.Fatalf("Sequences: %v", err)
	}
	if len(seqs) != in.NumGPUs {
		t.Fatalf("got %d sequences for %d original GPUs", len(seqs), in.NumGPUs)
	}
	if len(seqs[1]) != 0 {
		t.Fatalf("dead GPU 1 received tasks: %v", seqs[1])
	}
	// Residual GPU 1 maps to original GPU 2; residual (r0,i0) was not
	// pending and must be dropped.
	if len(seqs[0]) != 1 || seqs[0][0] != (core.TaskRef{Job: 0, Round: 2, Index: 0}) {
		t.Fatalf("gpu0 seq = %v", seqs[0])
	}
	want2 := []core.TaskRef{{Job: 0, Round: 1, Index: 1}, {Job: 0, Round: 2, Index: 1}}
	if len(seqs[2]) != 2 || seqs[2][0] != want2[0] || seqs[2][1] != want2[1] {
		t.Fatalf("gpu2 seq = %v", seqs[2])
	}
}

// TestResidualSplitsOversizedRounds: a job whose Scale exceeds the
// surviving GPU count is re-stated as virtual sub-rounds the planners
// can place, and every pending task still maps back exactly once.
func TestResidualSplitsOversizedRounds(t *testing.T) {
	in := &core.Instance{
		NumGPUs: 4,
		Jobs:    []*core.Job{{ID: 0, Name: "wide", Weight: 1, Rounds: 2, Scale: 4}},
		Train:   [][]float64{{1, 1, 1, 1}},
		Sync:    [][]float64{{0.1, 0.1, 0.1, 0.1}},
	}
	// GPUs 2 and 3 died with round 1 entirely pending: 4-wide rounds
	// must now fit on 2 survivors.
	pending := []core.TaskRef{
		{Job: 0, Round: 1, Index: 0}, {Job: 0, Round: 1, Index: 1},
		{Job: 0, Round: 1, Index: 2}, {Job: 0, Round: 1, Index: 3},
	}
	res, err := NewResidual(in, pending, []int{0, 1})
	if err != nil {
		t.Fatalf("NewResidual: %v", err)
	}
	rj := res.Instance.Jobs[0]
	if rj.Scale > res.Instance.NumGPUs {
		t.Fatalf("residual scale %d still exceeds %d survivors", rj.Scale, res.Instance.NumGPUs)
	}
	if rj.Rounds*rj.Scale < len(pending) {
		t.Fatalf("residual capacity %d×%d cannot hold %d pending tasks", rj.Rounds, rj.Scale, len(pending))
	}
	// Every virtual task maps to a distinct slot; the pending ones cover
	// the original round exactly.
	covered := make(map[core.TaskRef]bool)
	for r := 0; r < rj.Rounds; r++ {
		for i := 0; i < rj.Scale; i++ {
			ot := res.ToOriginal(core.TaskRef{Job: 0, Round: r, Index: i})
			if covered[ot] {
				t.Fatalf("slot %v covered twice", ot)
			}
			covered[ot] = true
		}
	}
	for _, p := range pending {
		if !covered[p] {
			t.Fatalf("pending task %v unreachable from the residual", p)
		}
	}
	// A feasible plan over the virtual rounds converts to sequences
	// that execute each pending task exactly once, on survivors only.
	plan := core.NewSchedule()
	for r := 0; r < rj.Rounds; r++ {
		for i := 0; i < rj.Scale; i++ {
			plan.Place(core.TaskRef{Job: 0, Round: r, Index: i}, i%2, float64(r*10))
		}
	}
	seqs, err := res.Sequences(plan)
	if err != nil {
		t.Fatalf("Sequences: %v", err)
	}
	var got []core.TaskRef
	for g, seq := range seqs {
		if g >= 2 && len(seq) != 0 {
			t.Fatalf("dead gpu%d received tasks: %v", g, seq)
		}
		got = append(got, seq...)
	}
	if len(got) != len(pending) {
		t.Fatalf("sequences execute %d tasks, want %d: %v", len(got), len(pending), got)
	}
	onceMore := make(map[core.TaskRef]bool)
	for _, ot := range got {
		if onceMore[ot] {
			t.Fatalf("task %v scheduled twice", ot)
		}
		onceMore[ot] = true
	}
}

func TestResidualErrors(t *testing.T) {
	in := twoJobInstance()
	pending := []core.TaskRef{{Job: 0, Round: 0, Index: 0}}
	if _, err := NewResidual(in, pending, nil); err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("no survivors: %v", err)
	}
	if _, err := NewResidual(in, nil, []int{0}); err == nil {
		t.Fatal("no pending tasks accepted")
	}
	if _, err := NewResidual(in, []core.TaskRef{{Job: 9}}, []int{0}); err == nil {
		t.Fatal("unknown job accepted")
	}
	if _, err := NewResidual(in, pending, []int{0, 0}); err == nil {
		t.Fatal("duplicate survivor accepted")
	}
	if _, err := NewResidual(in, pending, []int{7}); err == nil {
		t.Fatal("out-of-range survivor accepted")
	}
}
