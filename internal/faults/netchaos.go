package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Partition cuts one executor off from the coordinator for a window:
// starting at simulated time At, every dial and in-flight call from
// that GPU fails for a wall-clock duration Dur. The anchor is
// simulated time (shared with fail=/crash= so scenarios compose);
// the width is wall time because a partition is a property of the real
// network between the processes, not of the simulated workload.
type Partition struct {
	GPU int
	At  float64 // simulated seconds
	Dur time.Duration
}

// CoordDown schedules a coordinator outage: at simulated time At the
// coordinator process is killed, stays down for wall-clock Dur, and is
// then restarted from its write-ahead log (docs/ROBUSTNESS.md). The
// chaos harness interprets this entry; the transport itself does not.
type CoordDown struct {
	At  float64 // simulated seconds
	Dur time.Duration
}

// NetChaos is a seeded model of an unreliable network between
// executors and the coordinator. Probabilities apply independently to
// every RPC; injection happens at the call level (above the codec) so
// a dropped or duplicated message is a well-formed request, exercising
// the dedup/idempotency machinery rather than corrupting the stream.
type NetChaos struct {
	// Drop is the per-call loss probability in [0, 1). Half of the
	// losses eat the request (the call never reaches the coordinator),
	// half eat the reply (the coordinator processed it but the caller
	// sees an error) — the reply-loss half is what forces duplicate
	// pushes through the dedup path.
	Drop float64
	// Dup is the probability a call is transparently sent twice.
	Dup float64
	// Reorder is the probability a call is held back briefly so a
	// later call overtakes it.
	Reorder float64
	// DelayMin/DelayMax bound a uniform extra latency added to every
	// call. Zero means no injected delay.
	DelayMin, DelayMax time.Duration
	// Seed drives the per-GPU chaos decision streams (see RetrySeed);
	// zero falls back to the plan's transient seed.
	Seed int64
	// Partitions lists executor↔coordinator partition windows.
	Partitions []Partition
	// CoordDowns lists coordinator kill/restart windows.
	CoordDowns []CoordDown
}

// Empty reports whether no network fault is configured. Nil-safe.
func (n *NetChaos) Empty() bool {
	return n == nil || (n.Drop == 0 && n.Dup == 0 && n.Reorder == 0 &&
		n.DelayMax == 0 && len(n.Partitions) == 0 && len(n.CoordDowns) == 0)
}

// SortedPartitions returns the partition windows ordered by start time
// (ties by GPU) — the order the transport arms them in. Nil-safe.
func (n *NetChaos) SortedPartitions() []Partition {
	if n == nil {
		return nil
	}
	out := append([]Partition(nil), n.Partitions...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].GPU < out[b].GPU
	})
	return out
}

// SortedCoordDowns returns the coordinator outages ordered by start
// time. Nil-safe.
func (n *NetChaos) SortedCoordDowns() []CoordDown {
	if n == nil {
		return nil
	}
	out := append([]CoordDown(nil), n.CoordDowns...)
	sort.Slice(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// Validate checks internal consistency; numGPUs > 0 range-checks
// partition GPU indices. Nil receivers are valid.
func (n *NetChaos) Validate(numGPUs int) error {
	if n == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{{"netdrop", n.Drop}, {"netdup", n.Dup}, {"netreorder", n.Reorder}} {
		if math.IsNaN(pr.v) || pr.v < 0 || pr.v >= 1 {
			return fmt.Errorf("faults: %s %g outside [0, 1)", pr.name, pr.v)
		}
	}
	if n.DelayMin < 0 || n.DelayMax < 0 || n.DelayMax < n.DelayMin {
		return fmt.Errorf("faults: netdelay window %v~%v invalid (want 0 <= min <= max)", n.DelayMin, n.DelayMax)
	}
	for _, p := range n.Partitions {
		if p.GPU < 0 || (numGPUs > 0 && p.GPU >= numGPUs) {
			return fmt.Errorf("faults: partition of GPU %d outside fleet of %d", p.GPU, numGPUs)
		}
		if math.IsNaN(p.At) || math.IsInf(p.At, 0) || p.At < 0 {
			return fmt.Errorf("faults: partition of GPU %d at invalid time %g", p.GPU, p.At)
		}
		if p.Dur <= 0 {
			return fmt.Errorf("faults: partition of GPU %d has non-positive duration %v", p.GPU, p.Dur)
		}
	}
	for _, d := range n.CoordDowns {
		if math.IsNaN(d.At) || math.IsInf(d.At, 0) || d.At < 0 {
			return fmt.Errorf("faults: codown at invalid time %g", d.At)
		}
		if d.Dur <= 0 {
			return fmt.Errorf("faults: codown at %g has non-positive duration %v", d.At, d.Dur)
		}
	}
	return nil
}

// netString renders the network fields in Parse's grammar.
func (n *NetChaos) netString() []string {
	if n == nil {
		return nil
	}
	var parts []string
	if n.Drop != 0 {
		parts = append(parts, "netdrop="+strconv.FormatFloat(n.Drop, 'g', -1, 64))
	}
	if n.Dup != 0 {
		parts = append(parts, "netdup="+strconv.FormatFloat(n.Dup, 'g', -1, 64))
	}
	if n.Reorder != 0 {
		parts = append(parts, "netreorder="+strconv.FormatFloat(n.Reorder, 'g', -1, 64))
	}
	if n.DelayMax != 0 || n.DelayMin != 0 {
		parts = append(parts, "netdelay="+n.DelayMin.String()+"~"+n.DelayMax.String())
	}
	if n.Seed != 0 {
		parts = append(parts, "netseed="+strconv.FormatInt(n.Seed, 10))
	}
	for _, p := range n.Partitions {
		parts = append(parts, fmt.Sprintf("partition=%d@%s+%s", p.GPU, strconv.FormatFloat(p.At, 'g', -1, 64), p.Dur))
	}
	for _, d := range n.CoordDowns {
		parts = append(parts, fmt.Sprintf("codown=%s+%s", strconv.FormatFloat(d.At, 'g', -1, 64), d.Dur))
	}
	return parts
}

// net returns the plan's network chaos model, nil when absent.
func (p *Plan) NetModel() *NetChaos {
	if p == nil {
		return nil
	}
	return p.Net
}

// NetSeed returns the seed of the chaos decision streams, falling back
// to the transient fault seed when netseed is unset. Nil-safe.
func (p *Plan) NetSeed() int64 {
	if p == nil || p.Net == nil {
		return 0
	}
	if p.Net.Seed != 0 {
		return p.Net.Seed
	}
	return p.Seed
}

// parseNetField consumes one network-grammar field into p.Net,
// reporting whether the key belonged to the network grammar.
func (p *Plan) parseNetField(key, val string) (bool, error) {
	ensure := func() *NetChaos {
		if p.Net == nil {
			p.Net = &NetChaos{}
		}
		return p.Net
	}
	switch key {
	case "netdrop", "netdup", "netreorder":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return true, fmt.Errorf("faults: bad %s %q: %w", key, val, err)
		}
		n := ensure()
		switch key {
		case "netdrop":
			n.Drop = v
		case "netdup":
			n.Dup = v
		default:
			n.Reorder = v
		}
	case "netdelay":
		lo, hi, ok := strings.Cut(val, "~")
		if !ok {
			hi = lo
		}
		dlo, err := time.ParseDuration(lo)
		if err != nil {
			return true, fmt.Errorf("faults: bad netdelay min %q: %w", lo, err)
		}
		dhi, err := time.ParseDuration(hi)
		if err != nil {
			return true, fmt.Errorf("faults: bad netdelay max %q: %w", hi, err)
		}
		n := ensure()
		n.DelayMin, n.DelayMax = dlo, dhi
	case "netseed":
		seed, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return true, fmt.Errorf("faults: bad netseed %q: %w", val, err)
		}
		ensure().Seed = seed
	case "partition":
		gs, rest, ok := strings.Cut(val, "@")
		if !ok {
			return true, fmt.Errorf("faults: bad partition %q (want GPU@TIME+DUR)", val)
		}
		gpu, err := strconv.Atoi(gs)
		if err != nil {
			return true, fmt.Errorf("faults: bad partition GPU %q: %w", gs, err)
		}
		at, dur, err := parseAtDur(rest)
		if err != nil {
			return true, fmt.Errorf("faults: bad partition %q: %w", val, err)
		}
		n := ensure()
		n.Partitions = append(n.Partitions, Partition{GPU: gpu, At: at, Dur: dur})
	case "codown":
		at, dur, err := parseAtDur(val)
		if err != nil {
			return true, fmt.Errorf("faults: bad codown %q: %w", val, err)
		}
		n := ensure()
		n.CoordDowns = append(n.CoordDowns, CoordDown{At: at, Dur: dur})
	default:
		return false, nil
	}
	return true, nil
}

// parseAtDur parses "TIME+DUR" (simulated seconds + wall duration).
func parseAtDur(s string) (float64, time.Duration, error) {
	ts, ds, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("want TIME+DUR")
	}
	at, err := strconv.ParseFloat(ts, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad time %q: %w", ts, err)
	}
	dur, err := time.ParseDuration(ds)
	if err != nil {
		return 0, 0, fmt.Errorf("bad duration %q: %w", ds, err)
	}
	return at, dur, nil
}
