package faults

import (
	"fmt"
	"sort"

	"hare/internal/core"
)

// Residual is the shrunken scheduling instance left behind by a GPU
// failure: the pending (not yet completed or claimed) tasks of every
// job, restated as a fresh core.Instance over only the surviving GPUs,
// so that Algorithm 1 — or any core scheduler — can be re-run on it
// unchanged. The mapping back to the original task and GPU identities
// is retained, so the resulting plan converts directly into refreshed
// per-GPU executor sequences.
//
// Round semantics: a job's first pending round may be partially
// complete (some of its tasks finished or are in flight on survivors).
// The residual instance still bills the planner a full round for it —
// a deliberate, slightly conservative approximation — and Sequences
// drops the placements of the non-pending tasks afterwards. All later
// rounds are fully pending, because the round barrier means no
// round-(r+1) task can have started while round r was incomplete.
//
// When a job's Scale exceeds the surviving GPU count the planners
// would reject the residual outright, yet under relaxed scale-fixed
// synchronization the work is still executable: same-round tasks need
// not run concurrently, only before the round barrier lifts. Residual
// therefore splits each original round of such a job into k =
// ceil(Scale/survivors) virtual sub-rounds of at most ceil(Scale/k)
// tasks each, so the planner sees a job it can place; ToOriginal folds
// the sub-rounds back together. The split lives only in the plan — the
// executors and the simulator keep enforcing the ORIGINAL round
// barriers — so it costs some planned-sync pessimism but never
// correctness. Sub-round slots beyond the original Scale (when Scale
// is not divisible by k) are fillers: they map to indices outside the
// original round and are dropped by Sequences like any non-pending
// placement.
type Residual struct {
	// Instance is the residual problem over len(alive) GPUs.
	Instance *core.Instance

	jobOf     []core.JobID // residual job -> original job
	baseRound []int        // residual job -> first pending original round
	split     []int        // residual job -> virtual sub-rounds per original round
	subScale  []int        // residual job -> tasks per virtual sub-round
	alive     []int        // residual GPU -> original GPU
	pending   map[core.TaskRef]bool
	origGPUs  int
}

// NewResidual builds the residual instance for the given pending tasks
// (original-instance identities) over the surviving GPUs alive
// (original indices, any order). It fails when no GPU survives or when
// a pending task does not belong to the instance.
func NewResidual(orig *core.Instance, pending []core.TaskRef, alive []int) (*Residual, error) {
	if len(alive) == 0 {
		return nil, fmt.Errorf("faults: no surviving GPUs — run is unrecoverable")
	}
	seen := make(map[int]bool, len(alive))
	aliveSorted := append([]int(nil), alive...)
	sort.Ints(aliveSorted)
	for _, g := range aliveSorted {
		if g < 0 || g >= orig.NumGPUs {
			return nil, fmt.Errorf("faults: surviving GPU %d outside the %d-GPU instance", g, orig.NumGPUs)
		}
		if seen[g] {
			return nil, fmt.Errorf("faults: surviving GPU %d listed twice", g)
		}
		seen[g] = true
	}

	pendSet := make(map[core.TaskRef]bool, len(pending))
	first := make(map[core.JobID]int) // original job -> min pending round
	for _, t := range pending {
		if t.Job < 0 || int(t.Job) >= len(orig.Jobs) {
			return nil, fmt.Errorf("faults: pending task %v names unknown job", t)
		}
		j := orig.Jobs[t.Job]
		if t.Round < 0 || t.Round >= j.Rounds || t.Index < 0 || t.Index >= j.Scale {
			return nil, fmt.Errorf("faults: pending task %v outside job %d (%d rounds × %d)", t, t.Job, j.Rounds, j.Scale)
		}
		pendSet[t] = true
		if r, ok := first[t.Job]; !ok || t.Round < r {
			first[t.Job] = t.Round
		}
	}
	if len(pendSet) == 0 {
		return nil, fmt.Errorf("faults: no pending tasks — nothing to reschedule")
	}

	res := &Residual{
		pending:  pendSet,
		alive:    aliveSorted,
		origGPUs: orig.NumGPUs,
	}
	ri := &core.Instance{NumGPUs: len(aliveSorted)}
	for _, j := range orig.Jobs {
		fr, ok := first[j.ID]
		if !ok {
			continue // job fully done (or fully in flight on survivors)
		}
		// Oversized rounds (Scale > survivors) split into k virtual
		// sub-rounds the planner can place; k == 1 is the common,
		// untransformed case.
		k := 1
		if j.Scale > len(aliveSorted) {
			k = (j.Scale + len(aliveSorted) - 1) / len(aliveSorted)
		}
		sub := (j.Scale + k - 1) / k
		rj := &core.Job{
			ID:     core.JobID(len(ri.Jobs)),
			Name:   j.Name + "~resched",
			Model:  j.Model,
			Weight: j.Weight,
			// The failure happened after the job arrived (it had pending
			// work planned from its arrival onward), so the residual job
			// is available immediately. Planned starts are advisory —
			// executors and the simulator enforce the real barriers.
			Arrival: 0,
			Rounds:  (j.Rounds - fr) * k,
			Scale:   sub,
		}
		ri.Jobs = append(ri.Jobs, rj)
		res.jobOf = append(res.jobOf, j.ID)
		res.baseRound = append(res.baseRound, fr)
		res.split = append(res.split, k)
		res.subScale = append(res.subScale, sub)
		trainRow := make([]float64, len(aliveSorted))
		syncRow := make([]float64, len(aliveSorted))
		for i, g := range aliveSorted {
			trainRow[i] = orig.Train[j.ID][g]
			syncRow[i] = orig.Sync[j.ID][g]
		}
		ri.Train = append(ri.Train, trainRow)
		ri.Sync = append(ri.Sync, syncRow)
	}
	if err := ri.Validate(); err != nil {
		return nil, fmt.Errorf("faults: residual instance: %w", err)
	}
	res.Instance = ri
	return res, nil
}

// Alive returns the surviving original GPU indices, ascending.
func (r *Residual) Alive() []int { return append([]int(nil), r.alive...) }

// ToOriginal maps a residual-instance task back to its original
// identity. For split jobs the k virtual sub-rounds of an original
// round fold back onto it; a filler slot (virtual capacity past the
// original Scale) maps to an Index outside the original round and is
// never pending.
func (r *Residual) ToOriginal(t core.TaskRef) core.TaskRef {
	k := r.split[t.Job]
	return core.TaskRef{
		Job:   r.jobOf[t.Job],
		Round: r.baseRound[t.Job] + t.Round/k,
		Index: (t.Round%k)*r.subScale[t.Job] + t.Index,
	}
}

// Sequences converts a plan over the residual instance into per-GPU
// task sequences over the ORIGINAL instance: sequences are indexed by
// original GPU (failed GPUs get empty sequences), tasks carry their
// original identities, and placements of tasks that were not actually
// pending (the completed or in-flight part of a partial first round)
// are dropped.
func (r *Residual) Sequences(plan *core.Schedule) ([][]core.TaskRef, error) {
	if err := core.ValidateSchedule(r.Instance, plan); err != nil {
		return nil, fmt.Errorf("faults: residual plan: %w", err)
	}
	out := make([][]core.TaskRef, r.origGPUs)
	for ri, seq := range plan.Sequences(r.Instance.NumGPUs) {
		g := r.alive[ri]
		for _, t := range seq {
			ot := r.ToOriginal(t)
			if r.pending[ot] {
				out[g] = append(out[g], ot)
			}
		}
	}
	return out, nil
}
