package hare_test

import (
	"fmt"
	"sort"

	"hare"
)

// ExampleNewScheduler plans a deterministic workload with Hare and
// validates the plan against the paper's feasibility constraints.
func ExampleNewScheduler() {
	cl := hare.HeterogeneousCluster(hare.MidHeterogeneity, 4)
	_, in, _, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 4, Seed: 1, RoundsScale: 0.05,
	}, cl)
	if err != nil {
		panic(err)
	}
	plan, err := hare.NewScheduler().Schedule(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", hare.Validate(in, plan) == nil)
	fmt.Println("tasks placed:", len(plan.Placements))
	// Output:
	// feasible: true
	// tasks placed: 64
}

// ExampleSimulate replays a plan with Hare's fast task switching and
// reports the realized objective.
func ExampleSimulate() {
	cl := hare.HeterogeneousCluster(hare.HighHeterogeneity, 4)
	_, in, models, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 4, Seed: 2, RoundsScale: 0.05,
	}, cl)
	if err != nil {
		panic(err)
	}
	plan, err := hare.NewScheduler().Schedule(in)
	if err != nil {
		panic(err)
	}
	res, err := hare.Simulate(in, plan, cl, models, hare.SimOptions{
		Scheme: hare.SwitchHare, Speculative: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("all jobs finished:", len(res.JobCompletion) == len(in.Jobs))
	fmt.Println("weighted JCT positive:", res.WeightedJCT > 0)
	// Output:
	// all jobs finished: true
	// weighted JCT positive: true
}

// ExampleSchedulers lists the paper's evaluation lineup.
func ExampleSchedulers() {
	var names []string
	for _, a := range hare.Schedulers() {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
	// Output:
	// Gavel_FIFO
	// Hare
	// SRTF
	// Sched_Allox
	// Sched_Homo
}

// ExampleSwitchCost contrasts the three switching schemes for one
// model pair on a V100.
func ExampleSwitchCost() {
	from, _ := hare.ModelByName("GraphSAGE")
	to, _ := hare.ModelByName("ResNet50")
	d := hare.SwitchCost(hare.SwitchDefault, hare.V100, from, to, false)
	p := hare.SwitchCost(hare.SwitchPipeSwitch, hare.V100, from, to, false)
	h := hare.SwitchCost(hare.SwitchHare, hare.V100, from, to, true)
	fmt.Println("default is seconds-scale:", d.Total() > 1)
	fmt.Println("pipeswitch is ms-scale:", p.Total() < 0.05)
	fmt.Println("hare hit is sub-ms:", h.Total() < 0.001)
	// Output:
	// default is seconds-scale: true
	// pipeswitch is ms-scale: true
	// hare hit is sub-ms: true
}

// ExampleModelZoo shows the Fig. 2 calibration anchors.
func ExampleModelZoo() {
	resnet, _ := hare.ModelByName("ResNet50")
	sage, _ := hare.ModelByName("GraphSAGE")
	fmt.Printf("ResNet50 on V100: %.1fx\n", resnet.Speedup(hare.V100.Speed))
	fmt.Printf("GraphSAGE on V100: %.1fx\n", sage.Speedup(hare.V100.Speed))
	// Output:
	// ResNet50 on V100: 7.0x
	// GraphSAGE on V100: 1.9x
}
