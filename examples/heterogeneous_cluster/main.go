// Heterogeneous-cluster walkthrough: reconstructs the paper's Fig. 1
// toy example by hand using the public API, then sweeps the
// heterogeneity level of a larger fleet to show where Hare's
// advantage over job-level scheduling comes from.
//
//	go run ./examples/heterogeneous_cluster
package main

import (
	"fmt"
	"log"

	"hare"
	"hare/internal/metrics"
)

func main() {
	toyExample()
	heterogeneitySweep()
}

// toyExample is the paper's Fig. 1: three jobs, three GPUs, three
// policies. J2 wants the fast GPU to itself; J3 synchronizes pairs of
// tasks; J1 is input-bound and can soak up leftover capacity.
func toyExample() {
	in := &hare.Instance{
		NumGPUs: 3,
		Jobs: []*hare.Job{
			{ID: 0, Name: "J1", Weight: 1, Rounds: 1, Scale: 2},
			{ID: 1, Name: "J2", Weight: 1, Rounds: 3, Scale: 1},
			{ID: 2, Name: "J3", Weight: 1, Rounds: 2, Scale: 2},
		},
		Train: [][]float64{
			{2.5, 1.5, 1.5},
			{1.0, 2.0, 2.5},
			{1.5, 1.0, 1.0},
		},
		Sync: [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}},
	}
	fmt.Println("== Fig. 1 toy example: 3 jobs on 3 heterogeneous GPUs ==")
	var rows [][]string
	for _, name := range []string{"Sched_Homo", "Sched_Allox", "Hare"} {
		algo, err := hare.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := algo.Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, c := range plan.JobCompletions(in) {
			total += c
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.2f s", total),
			fmt.Sprintf("%.2f s", plan.Makespan(in)),
		})
	}
	fmt.Print(metrics.Table([]string{"policy", "total JCT", "makespan"}, rows))
	fmt.Println()
}

// heterogeneitySweep runs the same workload on fleets of increasing
// heterogeneity and compares Hare with AlloX-style job-level
// scheduling — the gap widens as the fleet gets more mixed (the
// paper's Fig. 16).
func heterogeneitySweep() {
	fmt.Println("== heterogeneity sweep: Hare vs job-level scheduling ==")
	levels := []struct {
		name  string
		level hare.HeterogeneityLevel
	}{
		{"low (V100 only)", hare.LowHeterogeneity},
		{"mid (V100+K80)", hare.MidHeterogeneity},
		{"high (V100+T4+K80+M60)", hare.HighHeterogeneity},
	}
	var rows [][]string
	for _, lv := range levels {
		cl := hare.HeterogeneousCluster(lv.level, 16)
		_, in, models, err := hare.BuildWorkload(hare.WorkloadConfig{
			Jobs: 24, Seed: 11, HorizonSeconds: 120, RoundsScale: 0.1,
		}, cl)
		if err != nil {
			log.Fatal(err)
		}
		cells := []string{lv.name}
		for _, name := range []string{"Hare", "Sched_Allox"} {
			algo, err := hare.SchedulerByName(name)
			if err != nil {
				log.Fatal(err)
			}
			plan, err := algo.Schedule(in)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hare.Simulate(in, plan, cl, models, hare.SimOptions{
				Scheme: hare.SwitchHare, Speculative: name == "Hare",
			})
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, fmt.Sprintf("%.0f", res.WeightedJCT))
		}
		rows = append(rows, cells)
	}
	fmt.Print(metrics.Table([]string{"heterogeneity", "Hare", "Sched_Allox"}, rows))
}
