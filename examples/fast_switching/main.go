// Fast-switching walkthrough: compares the three task-switching
// schemes (Default, PipeSwitch, Hare) per model, then demonstrates
// the speculative memory manager end to end by alternating two jobs
// on one V100 in the in-process testbed and measuring the actual
// switching stalls — Table 3 and Fig. 7/8 of the paper, live.
//
//	go run ./examples/fast_switching
package main

import (
	"fmt"
	"log"

	"hare"
	"hare/internal/metrics"
)

func main() {
	costTable()
	liveAlternation()
}

// costTable prints the modeled switch-into cost of every Table 2
// model under each scheme (cold, i.e. no speculative residency).
func costTable() {
	fmt.Println("== modeled switch cost into each model on a V100 (from ResNet50) ==")
	from, err := hare.ModelByName("ResNet50")
	if err != nil {
		log.Fatal(err)
	}
	var rows [][]string
	for _, m := range hare.ModelZoo() {
		if m.Name == from.Name {
			continue
		}
		d := hare.SwitchCost(hare.SwitchDefault, hare.V100, from, m, false)
		p := hare.SwitchCost(hare.SwitchPipeSwitch, hare.V100, from, m, false)
		h := hare.SwitchCost(hare.SwitchHare, hare.V100, from, m, false)
		hres := hare.SwitchCost(hare.SwitchHare, hare.V100, from, m, true)
		rows = append(rows, []string{
			m.Name,
			metrics.FormatSeconds(d.Total()),
			metrics.FormatSeconds(p.Total()),
			metrics.FormatSeconds(h.Total()),
			metrics.FormatSeconds(hres.Total()),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"model", "Default", "PipeSwitch", "Hare (miss)", "Hare (resident)"}, rows))
	fmt.Println()
}

// liveAlternation runs GraphSAGE and ResNet50 alternating on a single
// V100 in the real (goroutine) testbed under each scheme and reports
// the measured switching overhead and weighted JCT.
func liveAlternation() {
	fmt.Println("== live alternation of GraphSAGE and ResNet50 on one V100 ==")
	cl := hare.NewCluster([]hare.ClusterSpec{{Type: hare.V100, Count: 1}}, 1)

	graphsage, err := hare.ModelByName("GraphSAGE")
	if err != nil {
		log.Fatal(err)
	}
	resnet, err := hare.ModelByName("ResNet50")
	if err != nil {
		log.Fatal(err)
	}
	models := []*hare.Model{graphsage, resnet}

	const rounds = 8
	in := &hare.Instance{NumGPUs: 1}
	for i, m := range models {
		in.Jobs = append(in.Jobs, &hare.Job{
			ID: hare.JobID(i), Name: m.Name, Model: m.Name, Weight: 1,
			Rounds: rounds, Scale: 1,
		})
		// One task = 20 mini-batches on the V100; no network sync
		// (single worker).
		batch := m.BatchSeconds(hare.V100.Speed, 1)
		in.Train = append(in.Train, []float64{batch * 20})
		in.Sync = append(in.Sync, []float64{0})
	}
	// Strict alternation plan.
	plan := hare.NewSchedule()
	t := 0.0
	for r := 0; r < rounds; r++ {
		for j := range models {
			plan.Place(hare.TaskRef{Job: hare.JobID(j), Round: r}, 0, t)
			t += in.Train[j][0]
		}
	}

	var rows [][]string
	for _, scheme := range []hare.SwitchScheme{hare.SwitchDefault, hare.SwitchPipeSwitch, hare.SwitchHare} {
		res, err := hare.RunTestbed(in, plan, cl, models, hare.TestbedOptions{
			TimeScale:   2e-3,
			Scheme:      scheme,
			Speculative: scheme == hare.SwitchHare,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			scheme.String(),
			fmt.Sprintf("%.1f", res.WeightedJCT),
			metrics.FormatSeconds(res.TotalSwitch),
			fmt.Sprintf("%d", res.SwitchCount),
			fmt.Sprintf("%d", res.ResidencyHits),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"scheme", "weighted JCT", "measured switch time", "switches", "residency hits"}, rows))
}
