// Quickstart: schedule a mixed DML workload on the paper's 15-GPU
// heterogeneous testbed fleet with Hare, replay it on the simulator,
// and print the realized metrics plus a Gantt chart.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hare"
	"hare/internal/metrics"
)

func main() {
	// The paper's evaluation fleet: 8 V100 + 4 T4 + 1 K80 + 2 M60.
	cl := hare.TestbedCluster()
	fmt.Printf("cluster: %s\n", cl)

	// A deterministic 12-job workload drawn from the Table 2 model
	// mix, with Google-trace-like bursty arrivals over five minutes.
	// RoundsScale shrinks the jobs so the demo finishes instantly.
	specs, in, models, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs:           12,
		Seed:           7,
		HorizonSeconds: 300,
		RoundsScale:    0.1,
	}, cl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs, %d tasks, heterogeneity spread alpha=%.1f\n\n",
		len(in.Jobs), in.NumTasks(), in.Alpha())

	// Plan with Hare (Algorithm 1) and validate the plan against the
	// paper's feasibility constraints.
	plan, err := hare.NewScheduler().Schedule(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := hare.Validate(in, plan); err != nil {
		log.Fatal(err)
	}

	// Replay with Hare's fast task switching and speculative memory.
	res, err := hare.Simulate(in, plan, cl, models, hare.SimOptions{
		Scheme:      hare.SwitchHare,
		Speculative: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	var rows [][]string
	for _, s := range specs {
		j := s.Job
		rows = append(rows, []string{
			j.Name,
			fmt.Sprintf("%dx%d", j.Rounds, j.Scale),
			metrics.FormatSeconds(j.Arrival),
			metrics.FormatSeconds(res.JobCompletion[j.ID]),
		})
	}
	fmt.Print(metrics.Table([]string{"job", "rounds x scale", "arrival", "completion"}, rows))
	fmt.Printf("\nweighted JCT %.0f, makespan %s, mean GPU utilization %.0f%%\n",
		res.WeightedJCT, metrics.FormatSeconds(res.Makespan), res.MeanUtilization()*100)
	fmt.Printf("switching overhead: %s total across %d switches (%d speculative hits)\n\n",
		metrics.FormatSeconds(res.TotalSwitch), res.SwitchCount, res.ResidencyHits)
	fmt.Print(metrics.Gantt(res.Trace, in.NumGPUs, 100))
}
