// Online arrivals: the dynamic-jobs extension from the paper's
// limitations section. Jobs arrive over time (Google-trace-like
// bursts); the offline Hare plans with full arrival clairvoyance,
// while the online variant re-plans at every arrival knowing only
// the jobs seen so far and never revoking rounds that have started.
// The comparison shows what clairvoyance is (and is not) worth.
//
//	go run ./examples/online_arrivals
package main

import (
	"fmt"
	"log"

	"hare"
	"hare/internal/metrics"
)

func main() {
	cl := hare.HeterogeneousCluster(hare.HighHeterogeneity, 16)
	fmt.Printf("cluster: %s\n", cl)

	_, in, models, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 30, Seed: 21, HorizonSeconds: 240, RoundsScale: 0.15,
	}, cl)
	if err != nil {
		log.Fatal(err)
	}
	arrivalSpread := 0.0
	for _, j := range in.Jobs {
		if j.Arrival > arrivalSpread {
			arrivalSpread = j.Arrival
		}
	}
	fmt.Printf("workload: %d jobs arriving over %s\n\n", len(in.Jobs), metrics.FormatSeconds(arrivalSpread))

	var rows [][]string
	for _, algo := range []hare.Algorithm{hare.NewScheduler(), hare.NewOnlineScheduler()} {
		plan, err := algo.Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		if err := hare.Validate(in, plan); err != nil {
			log.Fatal(err)
		}
		res, err := hare.Simulate(in, plan, cl, models, hare.SimOptions{
			Scheme: hare.SwitchHare, Speculative: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			algo.Name(),
			fmt.Sprintf("%.0f", res.WeightedJCT),
			metrics.FormatSeconds(res.Makespan),
			fmt.Sprintf("%.0f%%", res.MeanUtilization()*100),
		})
	}
	fmt.Print(metrics.Table([]string{"scheduler", "weighted JCT", "makespan", "mean util"}, rows))
	fmt.Println("\nHare-online sees each job only at its arrival and never revokes")
	fmt.Println("rounds that have started; the residual gap to the clairvoyant")
	fmt.Println("offline planner is the price of not knowing the future.")
}
