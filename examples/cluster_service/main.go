// Cluster service: drive the Fig. 9 manager programmatically — the
// same lifecycle cmd/hared and cmd/harectl expose over RPC, here as a
// library. Jobs are submitted in two waves; each batch is profiled
// (with database reuse), planned by Hare, and executed, with the
// fleet-busy watermark carrying queueing across batches.
//
//	go run ./examples/cluster_service
package main

import (
	"fmt"
	"log"

	"hare"
	"hare/internal/manager"
	"hare/internal/metrics"
)

func main() {
	cl := hare.HeterogeneousCluster(hare.HighHeterogeneity, 12)
	fmt.Printf("managing %s\n\n", cl)

	m := manager.New(cl, manager.Options{
		Backend: &manager.TestbedBackend{TimeScale: 5e-4},
	})

	// Wave 1: a vision-heavy batch.
	wave1 := []manager.JobRequest{
		{Model: "ResNet50", Rounds: 6, Scale: 2, Weight: 2, Tag: "vision-a"},
		{Model: "VGG19", Rounds: 4, Scale: 2, Weight: 1, Tag: "vision-b"},
		{Model: "GraphSAGE", Rounds: 5, Scale: 1, Weight: 1, Tag: "graph"},
	}
	for _, r := range wave1 {
		if _, err := m.Submit(r); err != nil {
			log.Fatal(err)
		}
	}
	res1, err := m.ExecuteBatch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch %d: %d jobs, weighted JCT %.0f, makespan %s\n",
		res1.Batch, res1.Jobs, res1.WeightedJCT, metrics.FormatSeconds(res1.Makespan))

	// Wave 2 arrives while the fleet is still draining wave 1 — the
	// manager floors its start at the watermark. Re-submitting the
	// same models hits the profile database instead of re-profiling.
	wave2 := []manager.JobRequest{
		{Model: "ResNet50", Rounds: 6, Scale: 2, Weight: 3, Tag: "vision-a-retrain"},
		{Model: "Bert_base", Rounds: 3, Scale: 4, Weight: 2, Tag: "nlp"},
	}
	for _, r := range wave2 {
		if _, err := m.Submit(r); err != nil {
			log.Fatal(err)
		}
	}
	res2, err := m.ExecuteBatch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch %d: %d jobs, weighted JCT %.0f, makespan %s\n\n",
		res2.Batch, res2.Jobs, res2.WeightedJCT, metrics.FormatSeconds(res2.Makespan))

	var rows [][]string
	for _, st := range m.Statuses() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", st.ID), st.Tag, st.Model, string(st.State),
			metrics.FormatSeconds(st.Completion),
		})
	}
	fmt.Print(metrics.Table([]string{"id", "tag", "model", "state", "completion"}, rows))

	ps := m.ProfilerStats()
	fmt.Printf("\nprofile database: %d measured, %d reused (repeated submissions skip profiling)\n",
		ps.Measured, ps.Hits)
}
