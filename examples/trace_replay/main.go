// Trace replay: the paper's simulator-fidelity methodology end to
// end. A workload executes on the in-process testbed (real goroutine
// workers, parameter servers, measured wall timings); the per-task
// trace is saved to JSON, reduced to per-job mean train/sync times,
// and fed back into the trace-driven simulator. The final comparison
// is the paper's "no more than 5% difference" check (Fig. 12).
//
//	go run ./examples/trace_replay
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"hare"
	"hare/internal/metrics"
	"hare/internal/trace"
)

func main() {
	cl := hare.TestbedCluster()
	_, in, models, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 8, Seed: 13, HorizonSeconds: 60, RoundsScale: 0.05,
	}, cl)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := hare.NewScheduler().Schedule(in)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Execute on the testbed and record the trace.
	tb, err := hare.RunTestbed(in, plan, cl, models, hare.TestbedOptions{
		TimeScale: 1.5e-3, Scheme: hare.SwitchHare, Speculative: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "hare_trace.json")
	if err := tb.Trace.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("testbed executed %d tasks; trace saved to %s\n", len(tb.Trace.Records), path)

	// 2. Reload the trace and reduce it to per-job mean times — the
	// way the paper's simulator is driven by testbed traces.
	loaded, err := trace.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	means := loaded.MeanTimes()
	replayIn := &hare.Instance{
		Jobs:    in.Jobs,
		NumGPUs: in.NumGPUs,
		Train:   make([][]float64, len(in.Jobs)),
		Sync:    make([][]float64, len(in.Jobs)),
	}
	for _, j := range in.Jobs {
		mt := means[j.ID]
		replayIn.Train[j.ID] = make([]float64, in.NumGPUs)
		replayIn.Sync[j.ID] = make([]float64, in.NumGPUs)
		for m := 0; m < in.NumGPUs; m++ {
			// The measured mean folds the GPU mix the job actually
			// ran on; scale per-GPU times by the profiled ratios.
			ratio := in.Train[j.ID][m] / meanOf(in.Train[j.ID])
			replayIn.Train[j.ID][m] = mt.Train * ratio
			replayIn.Sync[j.ID][m] = mt.Sync
		}
	}

	// 3. Re-plan on the trace-derived instance and simulate.
	replayPlan, err := hare.NewScheduler().Schedule(replayIn)
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := hare.Simulate(replayIn, replayPlan, cl, models, hare.SimOptions{
		Scheme: hare.SwitchHare, Speculative: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Also simulate the original profiled instance for the direct
	// fidelity comparison.
	direct, err := hare.Simulate(in, plan, cl, models, hare.SimOptions{
		Scheme: hare.SwitchHare, Speculative: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	gap := math.Abs(tb.WeightedJCT-direct.WeightedJCT) / tb.WeightedJCT * 100
	rows := [][]string{
		{"testbed (measured)", fmt.Sprintf("%.0f", tb.WeightedJCT), metrics.FormatSeconds(tb.Makespan)},
		{"simulator (profiled times)", fmt.Sprintf("%.0f", direct.WeightedJCT), metrics.FormatSeconds(direct.Makespan)},
		{"simulator (trace-derived times)", fmt.Sprintf("%.0f", simRes.WeightedJCT), metrics.FormatSeconds(simRes.Makespan)},
	}
	fmt.Print(metrics.Table([]string{"run", "weighted JCT", "makespan"}, rows))
	fmt.Printf("\ntestbed vs simulator gap: %.1f%% (paper reports <= 5%%)\n", gap)
}

func meanOf(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
