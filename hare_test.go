package hare_test

import (
	"math"
	"os"
	"testing"

	"hare"
)

func TestEndToEndPublicAPI(t *testing.T) {
	cl := hare.TestbedCluster()
	specs, in, models, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 10, Seed: 3, HorizonSeconds: 120, RoundsScale: 0.05,
	}, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 10 || len(models) != 10 || len(in.Jobs) != 10 {
		t.Fatalf("workload sizes %d/%d/%d", len(specs), len(models), len(in.Jobs))
	}
	plan, err := hare.NewScheduler().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := hare.Validate(in, plan); err != nil {
		t.Fatal(err)
	}
	res, err := hare.Simulate(in, plan, cl, models, hare.SimOptions{
		Scheme: hare.SwitchHare, Speculative: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedJCT <= 0 || math.IsNaN(res.WeightedJCT) {
		t.Errorf("weighted JCT %g", res.WeightedJCT)
	}
	if u := res.MeanUtilization(); u <= 0 || u > 1 {
		t.Errorf("mean utilization %g", u)
	}
}

func TestAllSchedulersViaFacade(t *testing.T) {
	cl := hare.HeterogeneousCluster(hare.MidHeterogeneity, 6)
	_, in, _, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 8, Seed: 5, HorizonSeconds: 60, RoundsScale: 0.05,
	}, cl)
	if err != nil {
		t.Fatal(err)
	}
	schedulers := hare.Schedulers()
	if len(schedulers) != 5 {
		t.Fatalf("%d schedulers, want 5", len(schedulers))
	}
	for _, a := range schedulers {
		plan, err := a.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := hare.Validate(in, plan); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		byName, err := hare.SchedulerByName(a.Name())
		if err != nil || byName.Name() != a.Name() {
			t.Errorf("SchedulerByName(%q) failed: %v", a.Name(), err)
		}
	}
	if _, err := hare.SchedulerByName("nope"); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	if _, _, _, err := hare.BuildWorkload(hare.WorkloadConfig{}, hare.TestbedCluster()); err == nil {
		t.Error("zero job count accepted")
	}
}

func TestModelZooFacade(t *testing.T) {
	if len(hare.ModelZoo()) != 8 {
		t.Errorf("zoo size %d", len(hare.ModelZoo()))
	}
	m, err := hare.ModelByName("GraphSAGE")
	if err != nil {
		t.Fatal(err)
	}
	if m.Speedup(hare.V100.Speed) > 2.4 {
		t.Error("GraphSAGE not input-bound")
	}
	if s := hare.SyncTime(m, 25e9, 2); s <= 0 {
		t.Errorf("sync time %g", s)
	}
}

func TestSwitchCostFacade(t *testing.T) {
	a, _ := hare.ModelByName("VGG19")
	b, _ := hare.ModelByName("ResNet50")
	d := hare.SwitchCost(hare.SwitchDefault, hare.V100, a, b, false).Total()
	h := hare.SwitchCost(hare.SwitchHare, hare.V100, a, b, false).Total()
	if d < 1000*h {
		t.Errorf("default %.4fs vs hare %.6fs: expected ≥3 orders of magnitude", d, h)
	}
}

func TestWorkloadFileViaFacade(t *testing.T) {
	dir := t.TempDir()
	cl := hare.HeterogeneousCluster(hare.HighHeterogeneity, 4)
	specs, _, _, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 6, Seed: 4, RoundsScale: 0.05, HorizonSeconds: 30,
	}, cl)
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/wl.json"
	if err := hare.SaveWorkload(path, specs); err != nil {
		t.Fatal(err)
	}
	got, in, models, err := hare.LoadWorkload(path, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || len(models) != 6 {
		t.Fatalf("loaded %d specs / %d models", len(got), len(models))
	}
	plan, err := hare.NewScheduler().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := hare.Validate(in, plan); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterModelViaFacade(t *testing.T) {
	err := hare.RegisterModel(&hare.Model{
		Name: "FacadeNet", Class: "CV", Dataset: "synthetic", DefaultBatch: 16,
		ParamBytes: 8 << 20, NumLayers: 4,
		K80BatchSeconds: 0.4, ComputeFrac: 0.8,
		SwitchUnitBytes: 2 << 20, TrainFootprintBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := hare.ModelByName("FacadeNet")
	if err != nil {
		t.Fatal(err)
	}
	if m.Speedup(7) <= 1 {
		t.Error("registered model has no speedup on faster GPUs")
	}
}

func TestGoogleArrivalsViaFacade(t *testing.T) {
	// Round-trip through the Google job_events format.
	dir := t.TempDir()
	path := dir + "/job_events.csv"
	if err := writeGoogleFixture(path); err != nil {
		t.Fatal(err)
	}
	arr, err := hare.GoogleArrivals(path, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 3 || arr[0] != 0 || arr[2] != 100 {
		t.Fatalf("arrivals %v", arr)
	}
	cl := hare.HeterogeneousCluster(hare.MidHeterogeneity, 4)
	_, in, _, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 3, Seed: 1, RoundsScale: 0.05, Arrivals: arr,
	}, cl)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range in.Jobs {
		if j.Arrival != arr[i] {
			t.Errorf("job %d arrival %g, want %g", i, j.Arrival, arr[i])
		}
	}
}

func writeGoogleFixture(path string) error {
	csv := "0,,1,0,u,2,a,la\n5000000,,2,0,u,2,b,lb\n20000000,,3,0,u,2,c,lc\n"
	return os.WriteFile(path, []byte(csv), 0o644)
}

func TestTestbedViaFacade(t *testing.T) {
	cl := hare.NewCluster([]hare.ClusterSpec{{Type: hare.V100, Count: 2}}, 2)
	_, in, models, err := hare.BuildWorkload(hare.WorkloadConfig{
		Jobs: 3, Seed: 9, RoundsScale: 0.03,
	}, cl)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := hare.NewScheduler().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hare.RunTestbed(in, plan, cl, models, hare.TestbedOptions{TimeScale: 5e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Records) != in.NumTasks() {
		t.Errorf("testbed ran %d tasks, want %d", len(res.Trace.Records), in.NumTasks())
	}
}
