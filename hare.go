// Package hare is a Go reproduction of "Hare: Exploiting Inter-job
// and Intra-job Parallelism of Distributed Machine Learning on
// Heterogeneous GPUs" (Chen, Li, Wu, Guo — HPDC 2022).
//
// Hare schedules multiple distributed machine-learning (DML) jobs on
// a cluster of heterogeneous GPUs to minimize total weighted job
// completion time. It combines three ideas:
//
//   - fast task switching (early task cleaning + speculative GPU
//     memory management on top of pipelined context switching), which
//     makes task-level GPU preemption essentially free;
//   - relaxed scale-fixed synchronization, which keeps each training
//     round's task count fixed (for convergence certainty) but lets
//     the tasks run sequentially on shared GPUs instead of demanding
//     simultaneous gang execution;
//   - a relaxation-driven list-scheduling heuristic (the paper's
//     Algorithm 1) with an α(2+α) approximation guarantee.
//
// This package is the stable facade over the implementation: build a
// cluster, generate a workload, profile it into a scheduling
// instance, plan with any scheduler, and replay the plan on the
// discrete-event simulator or the in-process multi-goroutine testbed.
//
// A minimal end-to-end run:
//
//	cl := hare.TestbedCluster()
//	specs, in, models, _ := hare.BuildWorkload(hare.WorkloadConfig{Jobs: 16, Seed: 1}, cl)
//	_ = specs
//	plan, _ := hare.NewScheduler().Schedule(in)
//	res, _ := hare.Simulate(in, plan, cl, models, hare.SimOptions{})
//	fmt.Println(res.WeightedJCT)
package hare

import (
	"fmt"
	"io"

	"hare/internal/cluster"
	"hare/internal/core"
	"hare/internal/faults"
	"hare/internal/model"
	"hare/internal/obs"
	"hare/internal/obs/critpath"
	"hare/internal/obs/span"
	"hare/internal/profile"
	"hare/internal/sched"
	"hare/internal/sim"
	"hare/internal/switching"
	"hare/internal/testbed"
	"hare/internal/trace"
	"hare/internal/workload"
)

// Re-exported domain types. See the internal packages for full
// documentation of each.
type (
	// Job is one DML training job (arrival, weight, rounds, scale).
	Job = core.Job
	// JobID indexes jobs within an Instance.
	JobID = core.JobID
	// TaskRef names one task: (job, round, index).
	TaskRef = core.TaskRef
	// Instance is an offline scheduling problem: jobs plus per-(job,
	// GPU) training and synchronization times.
	Instance = core.Instance
	// Schedule is a solution: one (GPU, start) placement per task.
	Schedule = core.Schedule
	// Cluster is a heterogeneous GPU fleet.
	Cluster = cluster.Cluster
	// GPUType describes one GPU product (V100, T4, K80, M60).
	GPUType = cluster.GPUType
	// Model is one deep-learning workload from the paper's Table 2.
	Model = model.Model
	// Algorithm is a scheduling algorithm (Hare or a baseline).
	Algorithm = sched.Algorithm
	// SimOptions configures simulator replay.
	SimOptions = sim.Options
	// SimResult is the simulator's realized outcome.
	SimResult = sim.Result
	// TestbedOptions configures the in-process testbed.
	TestbedOptions = testbed.Options
	// TestbedResult is the testbed's measured outcome.
	TestbedResult = testbed.Result
	// SwitchScheme selects a task-switching cost model.
	SwitchScheme = switching.Scheme
	// Trace is an ordered record of executed tasks.
	Trace = trace.Trace
	// WorkloadSpec is one generated job with its model parameters.
	WorkloadSpec = workload.Spec
	// HeterogeneityLevel selects a Fig. 16 fleet preset.
	HeterogeneityLevel = cluster.HeterogeneityLevel
	// ClusterSpec requests n GPUs of one type when building a fleet.
	ClusterSpec = cluster.Spec
	// Placement is a scheduler's decision for one task.
	Placement = core.Placement
	// FaultPlan is a deterministic fault-injection plan (transient
	// failures, permanent GPU failures, crashes, stragglers) shared by
	// the simulator, the testbed, and the distributed control plane.
	FaultPlan = faults.Plan
)

// ParseFaults parses a fault-spec string such as
// "rate=0.05,seed=7,fail=3@120,crash=1@60,slow=2x1.5" into a plan the
// simulator, testbed, and distributed runner all accept. An empty
// spec yields an empty plan.
func ParseFaults(spec string) (*FaultPlan, error) { return faults.Parse(spec) }

// NewSchedule returns an empty schedule for hand-built plans.
func NewSchedule() *Schedule { return core.NewSchedule() }

// SaveSchedule persists a plan as JSON (the file analogue of the task
// sequences the scheduler pushes to executors).
func SaveSchedule(s *Schedule, path string) error { return core.SaveSchedule(s, path) }

// LoadSchedule reads a plan written by SaveSchedule.
func LoadSchedule(path string) (*Schedule, error) { return core.LoadSchedule(path) }

// SaveInstance persists a scheduling problem as JSON.
func SaveInstance(in *Instance, path string) error { return core.SaveInstance(in, path) }

// LoadInstance reads and validates an instance written by
// SaveInstance.
func LoadInstance(path string) (*Instance, error) { return core.LoadInstance(path) }

// The GPU types of the paper's testbed.
var (
	V100 = cluster.V100
	T4   = cluster.T4
	K80  = cluster.K80
	M60  = cluster.M60
)

// Switching schemes (Table 3).
const (
	SwitchDefault    = switching.Default
	SwitchPipeSwitch = switching.PipeSwitch
	SwitchHare       = switching.Hare
)

// Heterogeneity presets (Fig. 16).
const (
	LowHeterogeneity  = cluster.LowHeterogeneity
	MidHeterogeneity  = cluster.MidHeterogeneity
	HighHeterogeneity = cluster.HighHeterogeneity
)

// TestbedCluster returns the paper's 15-GPU evaluation fleet
// (8 V100 + 4 T4 + 1 K80 + 2 M60, 25 Gbps Ethernet).
func TestbedCluster() *Cluster { return cluster.Testbed() }

// HeterogeneousCluster returns an n-GPU fleet at one of the paper's
// Fig. 16 heterogeneity levels.
func HeterogeneousCluster(level cluster.HeterogeneityLevel, n int) *Cluster {
	return cluster.Heterogeneous(level, n)
}

// NewCluster builds a fleet from explicit (type, count) specs.
func NewCluster(specs []cluster.Spec, gpusPerHost int) *Cluster {
	return cluster.New(specs, gpusPerHost)
}

// NewScheduler returns the Hare scheduler (Algorithm 1 with the
// heterogeneity-aware earliest-finish GPU pick).
func NewScheduler() Algorithm { return sched.NewHare() }

// NewOnlineScheduler returns the non-clairvoyant Hare variant that
// re-plans at every job arrival — the dynamic-jobs extension the
// paper's limitations section calls for.
func NewOnlineScheduler() Algorithm { return sched.NewOnlineHare() }

// Schedulers returns Hare followed by the paper's four baselines:
// Gavel_FIFO, SRTF, Sched_Homo and Sched_Allox.
func Schedulers() []Algorithm { return sched.All() }

// SchedulerByName resolves a scheduler from its figure-legend name.
func SchedulerByName(name string) (Algorithm, error) { return sched.ByName(name) }

// ModelZoo returns the eight Table 2 workload models.
func ModelZoo() []*Model { return model.Zoo() }

// ModelByName resolves one model by its Table 2 name.
func ModelByName(name string) (*Model, error) { return model.ByName(name) }

// WorkloadConfig shapes BuildWorkload.
type WorkloadConfig struct {
	// Jobs is the number of jobs to generate (required).
	Jobs int
	// Seed makes the workload deterministic.
	Seed int64
	// HorizonSeconds spreads arrivals Google-trace-style over this
	// window; 0 means all jobs arrive at time zero.
	HorizonSeconds float64
	// RoundsScale shrinks (or grows) every job's round count;
	// defaults to 1 (paper-size jobs).
	RoundsScale float64
	// BatchScale multiplies every model's default batch size
	// (Fig. 19's B/B0 knob); defaults to 1.
	BatchScale float64
	// Mix overrides the default 25 %-per-class job mix.
	Mix workload.Mix
	// Arrivals, when set, supplies explicit arrival times (e.g. from
	// GoogleArrivals) and overrides HorizonSeconds; its length must
	// equal Jobs.
	Arrivals []float64
}

// GoogleArrivals loads job arrival times from a Google cluster-data
// job_events CSV file (the trace the paper replays), taking the first
// n SUBMIT events (all when n ≤ 0) and rescaling them onto horizon
// seconds (no rescale when ≤ 0). Use with WorkloadConfig.Arrivals.
func GoogleArrivals(path string, n int, horizon float64) ([]float64, error) {
	return trace.LoadGoogleArrivals(path, n, horizon)
}

// BuildWorkload generates a deterministic job population on the
// cluster and profiles it into a scheduling instance. It returns the
// generated specs, the instance, and the per-job models (needed for
// switching-aware simulation).
func BuildWorkload(cfg WorkloadConfig, cl *Cluster) ([]*WorkloadSpec, *Instance, []*Model, error) {
	if cfg.Jobs <= 0 {
		return nil, nil, nil, fmt.Errorf("hare: WorkloadConfig.Jobs must be positive, got %d", cfg.Jobs)
	}
	if cfg.RoundsScale == 0 {
		cfg.RoundsScale = 1
	}
	if cfg.BatchScale == 0 {
		cfg.BatchScale = 1
	}
	arrivals := cfg.Arrivals
	if arrivals != nil && len(arrivals) != cfg.Jobs {
		return nil, nil, nil, fmt.Errorf("hare: %d arrivals for %d jobs", len(arrivals), cfg.Jobs)
	}
	if arrivals == nil && cfg.HorizonSeconds > 0 {
		arrivals = trace.Arrivals(cfg.Jobs, cfg.HorizonSeconds, cfg.Seed+1)
	}
	specs := workload.Generate(workload.Options{
		NumJobs:     cfg.Jobs,
		Mix:         cfg.Mix,
		Arrivals:    arrivals,
		BatchScale:  cfg.BatchScale,
		RoundsScale: cfg.RoundsScale,
		MaxSync:     cl.Size(),
		Seed:        cfg.Seed + 2,
	})
	return profileSpecs(specs, cl, cfg.Seed+3)
}

// LoadWorkload reads an explicit job list from a JSON workload file
// (see internal/workload.FileJob for the format) and profiles it into
// an instance on the cluster. RegisterModel-ed architectures are
// accepted alongside the Table 2 zoo.
func LoadWorkload(path string, cl *Cluster) ([]*WorkloadSpec, *Instance, []*Model, error) {
	specs, err := workload.LoadSpecs(path, cl.Size())
	if err != nil {
		return nil, nil, nil, err
	}
	return profileSpecs(specs, cl, 0)
}

// SaveWorkload writes specs to a JSON workload file that LoadWorkload
// reads back.
func SaveWorkload(path string, specs []*WorkloadSpec) error {
	return workload.SaveSpecs(path, specs)
}

// RegisterModel adds a user-defined model to the zoo (see
// internal/model.Register for the calibration fields it validates).
func RegisterModel(m *Model) error { return model.Register(m) }

// profileSpecs turns specs into (instance, models) on a cluster.
func profileSpecs(specs []*WorkloadSpec, cl *Cluster, seed int64) ([]*WorkloadSpec, *Instance, []*Model, error) {
	prof := profile.New(profile.Options{Seed: seed})
	jobSpecs := make([]profile.JobSpec, len(specs))
	for i, s := range specs {
		jobSpecs[i] = s
	}
	in, err := prof.BuildInstance(workload.Jobs(specs), jobSpecs, cl)
	if err != nil {
		return nil, nil, nil, err
	}
	models := make([]*Model, len(specs))
	for i, s := range specs {
		models[i] = model.MustByName(s.Model)
	}
	return specs, in, models, nil
}

// Simulate replays a plan on the discrete-event simulator. Pass nil
// cl/models to replay without switching overheads.
func Simulate(in *Instance, plan *Schedule, cl *Cluster, models []*Model, opts SimOptions) (*SimResult, error) {
	return sim.Run(in, plan, cl, models, opts)
}

// RunTestbed executes a plan on the in-process multi-goroutine
// testbed: real SGD workers, parameter servers and checkpointing on a
// scaled clock. All reported timings are measured.
func RunTestbed(in *Instance, plan *Schedule, cl *Cluster, models []*Model, opts TestbedOptions) (*TestbedResult, error) {
	return testbed.Run(in, plan, cl, models, opts)
}

// Validate checks a schedule against the paper's feasibility
// constraints (4)–(8).
func Validate(in *Instance, plan *Schedule) error {
	return core.ValidateSchedule(in, plan)
}

// Observability (see internal/obs and docs/OBSERVABILITY.md): a
// structured event bus with pluggable sinks, a metrics registry with
// text exposition, and a Chrome trace-event exporter keyed by GPU
// lane.
type (
	// Event is one structured runtime event (task start/finish,
	// barrier wait, job switch, memory admit/evict/hit, scheduler
	// decision, job submit/complete).
	Event = obs.Event
	// EventType discriminates events.
	EventType = obs.Type
	// EventSink receives emitted events.
	EventSink = obs.Sink
	// Recorder fans events out to its sinks; a nil *Recorder is a
	// valid no-op, so instrumented paths cost nothing when tracing is
	// off.
	Recorder = obs.Recorder
	// RingSink keeps the most recent events in a fixed ring.
	RingSink = obs.RingSink
	// CollectSink keeps every event (tests and exports).
	CollectSink = obs.CollectSink
	// JSONLSink streams events as JSON lines.
	JSONLSink = obs.JSONLSink
	// MetricsRegistry holds counters, gauges and histograms.
	MetricsRegistry = obs.Registry
)

// NewRecorder builds a recorder over the given sinks.
func NewRecorder(sinks ...obs.Sink) *Recorder { return obs.NewRecorder(sinks...) }

// NewRingSink keeps the last capacity events.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewCollectSink keeps every event.
func NewCollectSink() *CollectSink { return obs.NewCollectSink() }

// NewJSONLSink streams events to w as JSON lines.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WriteChromeTrace renders events as a Chrome trace-event JSON array
// (load in chrome://tracing or Perfetto), one lane per GPU.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return obs.WriteChromeTrace(w, events)
}

// SaveChromeTrace writes a Chrome trace-event file.
func SaveChromeTrace(path string, events []Event) error {
	return obs.SaveChromeTrace(path, events)
}

// Causal span tracing and WJCT critical-path attribution (see
// internal/obs/span, internal/obs/critpath and
// docs/OBSERVABILITY.md): the flat event stream folds into a
// job → round → task → phase tree, and the tree folds into a per-job
// account of where completion time went.
type (
	// SpanTree is the canonical causal tree built from an event
	// stream.
	SpanTree = span.Tree
	// Span is one node of the tree.
	Span = span.Span
	// AttributionReport breaks every job's completion time into
	// critical-path buckets, with per-GPU-type and per-weight
	// roll-ups and straggler detection.
	AttributionReport = critpath.Report
)

// BuildSpanTree folds captured events into the canonical span tree.
// The tree is a function of the event set — engines that record the
// same run in different orders build identical trees.
func BuildSpanTree(events []Event) (*SpanTree, error) { return span.Build(events) }

// AnalyzeCritPath attributes every job's completion time to
// critical-path buckets (arrival, queue, barrier wait, switch,
// compute, communication); per job the buckets sum to the realized
// completion within ~1e-9.
func AnalyzeCritPath(t *SpanTree, in *Instance, cl *Cluster) (*AttributionReport, error) {
	return critpath.Analyze(t, in, cl)
}

// PlanAttribution replays a plan on the simulator with span
// instrumentation and returns the tree plus its attribution — the
// canonical account of a schedule, independent of which engine
// executes it.
func PlanAttribution(in *Instance, plan *Schedule, cl *Cluster, models []*Model, opts SimOptions) (*SpanTree, *AttributionReport, error) {
	return critpath.PlanAttribution(in, plan, cl, models, opts)
}

// SaveChromeTraceSpans writes a Chrome trace-event file with an extra
// "spans" process that renders the causal tree as nested slices.
func SaveChromeTraceSpans(path string, events []Event, t *SpanTree) error {
	return obs.SaveChromeTraceSpans(path, events, span.ChromeSpans(t))
}

// SetSchedulerRecorder attaches a recorder to an algorithm that
// supports decision tracing (Hare and Hare-online); it reports whether
// the algorithm accepted it.
func SetSchedulerRecorder(a Algorithm, r *Recorder) bool {
	type recordable interface{ SetRecorder(*obs.Recorder) }
	if ra, ok := a.(recordable); ok {
		ra.SetRecorder(r)
		return true
	}
	return false
}

// SwitchBreakdown itemizes one task switch (cleanup, context,
// initialization, transfer).
type SwitchBreakdown = switching.Breakdown

// SwitchCost models the cost of switching a GPU from a task of prev
// to a task of next under the given scheme. prev may be nil (cold
// start); nextResident marks next's weights as already on the device
// (speculative memory hit).
func SwitchCost(scheme SwitchScheme, gpu GPUType, prev, next *Model, nextResident bool) SwitchBreakdown {
	return switching.Cost(scheme, gpu, prev, next, nextResident)
}

// SyncTime returns a model's per-round synchronization time (push +
// pull of its gradients/parameters) over a network of netBps bits per
// second with syncScale parallel workers.
func SyncTime(m *Model, netBps float64, syncScale int) float64 {
	return profile.SyncTime(m, netBps, syncScale)
}
