package hare

// One benchmark per paper table/figure (see DESIGN.md's experiment
// index) plus micro-benchmarks of the core machinery. The benchmarks
// run scaled-down configurations so `go test -bench=.` completes on a
// laptop; cmd/harebench runs the full-size experiments and prints the
// paper-shaped rows. Where a figure has a headline comparison, the
// benchmark reports it as a custom metric (e.g. Hare's weighted JCT
// as a fraction of the best baseline's).

import (
	"math"
	"testing"

	"hare/internal/assign"
	"hare/internal/cluster"
	"hare/internal/experiments"
	"hare/internal/gpumem"
	"hare/internal/manager"
	"hare/internal/obs"
	"hare/internal/sched"
	"hare/internal/sched/relax"
	"hare/internal/sim"
	"hare/internal/stats"
	"hare/internal/switching"
	"hare/internal/tenants"
)

// benchCfg is the scaled-down experiment configuration shared by the
// figure benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{
		Seed:           42,
		RoundsScale:    0.1,
		Jobs:           40,
		GPUs:           24,
		HorizonSeconds: 300,
		WithSwitching:  true,
		Speculative:    true,
	}
}

// reportHareVsBest attaches Hare's weighted JCT relative to the best
// baseline as a benchmark metric.
func reportHareVsBest(b *testing.B, rows []experiments.SweepRow) {
	b.Helper()
	var ratioSum float64
	var n int
	for _, row := range rows {
		var hare, best float64
		best = math.Inf(1)
		for _, r := range row.Results {
			if r.Scheme == "Hare" {
				hare = r.WeightedJCT
			} else if r.WeightedJCT < best {
				best = r.WeightedJCT
			}
		}
		if best > 0 && !math.IsInf(best, 1) {
			ratioSum += hare / best
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(ratioSum/float64(n), "hare/best-baseline")
	}
}

func BenchmarkFig1Toy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig1Toy()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig2Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig2Speedups(); len(rows) != 8 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig3Util(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig3Util(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig5EpochTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig5EpochTime(); len(rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig6Util(b *testing.B) {
	cfg := experiments.Config{RoundsScale: 0.2}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6Util(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SwitchRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig7SwitchRatio(); len(rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig8SwitchingUtil(b *testing.B) {
	cfg := experiments.Config{RoundsScale: 0.5}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8SwitchingUtil(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Stability(b *testing.B) {
	cfg := experiments.Config{RoundsScale: 0.2}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11Stability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkTable3Switching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3Switching()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig12Testbed(b *testing.B) {
	cfg := benchCfg()
	cfg.RoundsScale = 0.05
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12Testbed(cfg, experiments.Fig12Options{
			Jobs: 10, TimeScale: 5e-4, TestbedSchemes: []string{"Hare"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig13CDF(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13CDF(cfg, 16)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig14GPUSweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14GPUSweep(cfg, []int{16, 24})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportHareVsBest(b, rows)
		}
	}
}

// BenchmarkFig14GPUSweepParallel runs the same sweep with the worker
// pool sized to the machine; compare its ns/op against
// BenchmarkFig14GPUSweep for the parallel engine's speedup (the rows
// are identical — TestParallelMatchesSerialFig14 pins that).
func BenchmarkFig14GPUSweepParallel(b *testing.B) {
	cfg := benchCfg()
	cfg.Parallel = -1 // GOMAXPROCS
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14GPUSweep(cfg, []int{16, 24})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportHareVsBest(b, rows)
		}
	}
}

func BenchmarkFig15JobSweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15JobSweep(cfg, []int{24, 48})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportHareVsBest(b, rows)
		}
	}
}

func BenchmarkFig16Heterogeneity(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16Heterogeneity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportHareVsBest(b, rows)
		}
	}
}

func BenchmarkFig17JobMix(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rowsByClass, err := experiments.Fig17JobMix(cfg, []float64{0.25, 0.55})
		if err != nil {
			b.Fatal(err)
		}
		if len(rowsByClass) != 4 {
			b.Fatal("unexpected class count")
		}
	}
}

func BenchmarkFig18Bandwidth(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig18Bandwidth(cfg, []float64{10, 25})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportHareVsBest(b, rows)
		}
	}
}

func BenchmarkFig19BatchSize(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig19BatchSize(cfg, []float64{0.5, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportHareVsBest(b, rows)
		}
	}
}

func BenchmarkAblationEFT(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEFT(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSync(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSync(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOnline(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOnline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpeculativeMemory(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSpeculativeMemory(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMemoryPolicy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMemoryPolicy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtendedBaselines(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtendedBaselines(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFairnessComparison(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FairnessComparison(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core machinery ---

func benchInstance(jobs, gpus int, seed int64) *Instance {
	cl := HeterogeneousCluster(HighHeterogeneity, gpus)
	_, in, _, err := BuildWorkload(WorkloadConfig{
		Jobs: jobs, Seed: seed, HorizonSeconds: 600, RoundsScale: 0.1,
	}, cl)
	if err != nil {
		panic(err)
	}
	return in
}

func BenchmarkHareSchedule(b *testing.B) {
	in := benchInstance(60, 24, 5)
	algo := sched.NewHare()
	b.ReportMetric(float64(in.NumTasks()), "tasks")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFluidRelaxation(b *testing.B) {
	in := benchInstance(60, 24, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relax.Fluid(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlloxSchedule(b *testing.B) {
	in := benchInstance(60, 24, 5)
	algo := sched.NewSchedAllox()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorReplay(b *testing.B) {
	cl := HeterogeneousCluster(HighHeterogeneity, 24)
	_, in, models, err := BuildWorkload(WorkloadConfig{
		Jobs: 60, Seed: 5, HorizonSeconds: 600, RoundsScale: 0.1,
	}, cl)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sched.NewHare().Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(in, plan, cl, models, sim.Options{
			Scheme: switching.Hare, Speculative: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorReplayReference replays the same plan with the
// original O(tasks·GPUs) rescan loop; the gap to
// BenchmarkSimulatorReplay is what the incremental candidate engine
// buys (docs/PERFORMANCE.md records the numbers).
func BenchmarkSimulatorReplayReference(b *testing.B) {
	cl := HeterogeneousCluster(HighHeterogeneity, 24)
	_, in, models, err := BuildWorkload(WorkloadConfig{
		Jobs: 60, Seed: 5, HorizonSeconds: 600, RoundsScale: 0.1,
	}, cl)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sched.NewHare().Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunReference(in, plan, cl, models, sim.Options{
			Scheme: switching.Hare, Speculative: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPooledReplay measures the steady state of a reused
// Simulator on BenchmarkSimulatorReplay's workload: after the first
// run grows the arenas, replays recycle every buffer and the returned
// Result, so allocs/op must stay near zero (hareperf's
// pooled-replay-allocs cap holds it there absolutely).
func BenchmarkPooledReplay(b *testing.B) {
	cl := HeterogeneousCluster(HighHeterogeneity, 24)
	_, in, models, err := BuildWorkload(WorkloadConfig{
		Jobs: 60, Seed: 5, HorizonSeconds: 600, RoundsScale: 0.1,
	}, cl)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sched.NewHare().Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.Options{Scheme: switching.Hare, Speculative: true}
	s := sim.NewSimulator()
	if _, err := s.Run(in, plan, cl, models, opts); err != nil {
		b.Fatal(err) // warm the arenas outside the timer
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(in, plan, cl, models, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// shardedBenchTrace builds the multi-tenant trace the sharded-replay
// benchmarks share: 8 independent tenants, so Options.Parallel can
// fan the replay across up to 8 workers.
func shardedBenchTrace(b *testing.B) *tenants.Trace {
	b.Helper()
	tr, err := tenants.Build(tenants.Config{
		Tenants: 8, JobsPerTenant: 20, GPUsPerTenant: 8,
		RoundsScale: 0.2, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkShardedReplay replays the multi-tenant trace with
// component sharding across GOMAXPROCS workers; against
// BenchmarkShardedReplaySerial it reports the wall-clock speedup
// sharding buys (≥2x expected at GOMAXPROCS ≥ 4; identical results
// are pinned by TestShardedMatchesSerial).
func BenchmarkShardedReplay(b *testing.B) {
	tr := shardedBenchTrace(b)
	opts := sim.Options{Scheme: switching.Hare, Speculative: true, Parallel: -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedReplaySerial is the serial control for
// BenchmarkShardedReplay: same trace, same pooled engine, no
// sharding.
func BenchmarkShardedReplaySerial(b *testing.B) {
	tr := shardedBenchTrace(b)
	opts := sim.Options{Scheme: switching.Hare, Speculative: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr.Instance, tr.Schedule, tr.Cluster, tr.Models, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// obsBenchSetup builds the workload and plan shared by the obs
// overhead benchmarks, matching BenchmarkSimulatorReplay.
func obsBenchSetup(b *testing.B) (*Instance, *Schedule, *Cluster, []*Model) {
	b.Helper()
	cl := HeterogeneousCluster(HighHeterogeneity, 24)
	_, in, models, err := BuildWorkload(WorkloadConfig{
		Jobs: 60, Seed: 5, HorizonSeconds: 600, RoundsScale: 0.1,
	}, cl)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sched.NewHare().Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	return in, plan, cl, models
}

// BenchmarkObsDisabled replays the instrumented simulator path with a
// nil recorder — the acceptance bar is that it stays within noise
// (≤2%) of BenchmarkSimulatorReplay, the uninstrumented baseline, so
// observability hooks cost nothing when nobody listens.
func BenchmarkObsDisabled(b *testing.B) {
	in, plan, cl, models := obsBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(in, plan, cl, models, SimOptions{
			Scheme: switching.Hare, Speculative: true,
			Recorder: nil, Metrics: nil,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsEnabledRing measures the same replay with full event
// emission into a ring sink plus live counters — the hared
// steady-state configuration.
func BenchmarkObsEnabledRing(b *testing.B) {
	in, plan, cl, models := obsBenchSetup(b)
	ring := NewRingSink(4096)
	reg := NewMetricsRegistry()
	rec := NewRecorder(ring)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(in, plan, cl, models, SimOptions{
			Scheme: switching.Hare, Speculative: true,
			Recorder: rec, Metrics: reg,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsRPCDisabled pins the cost of the control-plane RPC
// instrumentation when nobody listens: a nil RPCObserver hands out nil
// method handles, so the per-call wrapper rpcnet wraps around every
// coordinator/executor RPC must add no clock reads and no allocations.
// The loop mirrors the executor's call path — Active gate, Start,
// call body, Observe — with a xorshift standing in for the RPC.
func BenchmarkObsRPCDisabled(b *testing.B) {
	m := obs.NewRPCObserver(nil, nil, "client").Method("Coordinator.Push")
	var calls uint64
	sink := uint64(0x9e3779b97f4a7c15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var call uint64
		if m.Active() {
			calls++
			call = calls
		}
		t := m.Start(0)
		sink ^= sink << 13
		sink ^= sink >> 7
		sink ^= sink << 17
		m.Observe(t, 0, obs.Event{GPU: 0, Call: call}, nil)
	}
	if sink == 0 {
		b.Fatal("xorshift collapsed")
	}
}

// BenchmarkObsRPCEnabledRing measures the same wrapper fully on: event
// emission into a ring sink plus the per-method counter and histogram
// series — the hared steady-state configuration of the distributed
// control plane.
func BenchmarkObsRPCEnabledRing(b *testing.B) {
	ring := obs.NewRingSink(4096)
	reg := obs.NewRegistry()
	m := obs.NewRPCObserver(obs.NewRecorder(ring), reg, "client").Method("Coordinator.Push")
	var calls uint64
	sink := uint64(0x9e3779b97f4a7c15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var call uint64
		if m.Active() {
			calls++
			call = calls
		}
		t := m.Start(0)
		sink ^= sink << 13
		sink ^= sink >> 7
		sink ^= sink << 17
		m.Observe(t, 0, obs.Event{GPU: 0, Call: call}, nil)
	}
	if sink == 0 {
		b.Fatal("xorshift collapsed")
	}
}

func BenchmarkHungarian(b *testing.B) {
	rng := stats.New(9)
	const n, m = 60, 120
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			cost[i][j] = rng.Uniform(0, 100)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assign.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnlineHareSchedule(b *testing.B) {
	in := benchInstance(60, 24, 5)
	algo := sched.NewOnlineHare()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTiresiasLASSchedule(b *testing.B) {
	in := benchInstance(60, 24, 5)
	algo := sched.NewTiresiasLAS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineStall(b *testing.B) {
	zoo := ModelZoo()
	var sink float64
	for i := 0; i < b.N; i++ {
		m := zoo[i%len(zoo)]
		plan, err := switching.PipelineStall(m, cluster.V100, m.BatchSeconds(cluster.V100.Speed, 1), 0)
		if err != nil {
			b.Fatal(err)
		}
		sink += plan.Stall
	}
	_ = sink
}

func BenchmarkManagerBatch(b *testing.B) {
	cl := HeterogeneousCluster(HighHeterogeneity, 12)
	for i := 0; i < b.N; i++ {
		m := manager.New(cl, manager.Options{Backend: &manager.SimBackend{Seed: int64(i)}})
		for j := 0; j < 20; j++ {
			if _, err := m.Submit(manager.JobRequest{
				Model: "ResNet50", Rounds: 5, Scale: 2, Weight: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.ExecuteBatch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPUMemManager(b *testing.B) {
	zoo := ModelZoo()
	mem := gpumem.NewManager(16 << 30)
	look := make([]gpumem.JobKey, 64)
	for i := range look {
		look[i] = gpumem.JobKey(i % 6)
	}
	mem.SetLookahead(look)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := zoo[i%len(zoo)]
		k := gpumem.JobKey(i % 6)
		mem.Begin(k, m.TrainFootprintBytes)
		mem.Complete(k, m.ParamBytes, float64(i))
	}
}

func BenchmarkSwitchingCost(b *testing.B) {
	zoo := ModelZoo()
	var sink float64
	for i := 0; i < b.N; i++ {
		prev := zoo[i%len(zoo)]
		next := zoo[(i+1)%len(zoo)]
		sink += switching.Cost(switching.Hare, cluster.V100, prev, next, i%2 == 0).Total()
	}
	_ = sink
}
