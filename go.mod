module hare

go 1.22
